//! The database: named tables, data-change statements, and statement-level
//! AFTER triggers with transition tables — the exact interface the paper
//! assumes of the underlying RDBMS (§2.3, §3.2).
//!
//! Triggers fire once per *statement* (not per row, not per transaction),
//! matching the paper's stated granularity. A firing trigger sees the Δ
//! (`INSERTED`) and ∇ (`DELETED`) transition tables of its statement and the
//! post-statement database state, and may itself execute statements (e.g.
//! the benchmark action inserts into a temporary table); cascades are capped
//! at a DB2-like nesting depth of 16.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::exec::{execute, ExecCache, ExecContext};
use crate::expr::{BinOp, Expr};
use crate::plan::PlanRef;
use crate::schema::TableSchema;
use crate::table::{Key, Table};
use crate::value::{ColumnType, Row, Value};
use crate::wire::RedoOp;
use crate::{Error, Result};

/// Relational statement kinds, which double as trigger event kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Event {
    /// `INSERT` statements / triggers.
    Insert,
    /// `UPDATE` statements / triggers.
    Update,
    /// `DELETE` statements / triggers.
    Delete,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Insert => f.write_str("INSERT"),
            Event::Update => f.write_str("UPDATE"),
            Event::Delete => f.write_str("DELETE"),
        }
    }
}

/// Transition tables of one statement: Δ = `inserted`, ∇ = `deleted`
/// (paper notation; DB2's `NEW_TABLE`/`OLD_TABLE`).
#[derive(Debug, Clone)]
pub struct TransitionTables {
    /// Table the statement changed.
    pub table: String,
    /// Statement kind.
    pub event: Event,
    /// Post-change versions of affected rows (empty for DELETE).
    pub inserted: Vec<Row>,
    /// Pre-change versions of affected rows (empty for INSERT).
    pub deleted: Vec<Row>,
}

/// Callback receiving the rows produced by a query-bodied trigger.
///
/// Takes `&Database`: every data-change entry point is interior-mutable
/// (per-table latches), so a cascade can run while the session layer holds
/// only a shared reference — the requirement behind footprint-scoped
/// parallel writers.
pub type RowsHandler = dyn Fn(&Database, Vec<Row>) -> Result<()> + Send + Sync;

/// Callback for a native-bodied trigger (same `&Database` contract as
/// [`RowsHandler`]).
pub type NativeTriggerFn = dyn Fn(&Database, &TransitionTables) -> Result<()> + Send + Sync;

/// Body of a registered statement trigger.
#[derive(Clone)]
pub enum TriggerBody {
    /// Evaluate `plan` with the statement's transition tables bound, then
    /// pass the result rows to `handler`. This is the form every translated
    /// XML trigger takes (the plan is the paper's generated SQL query).
    Query {
        /// The trigger body query.
        plan: PlanRef,
        /// Consumer of the query result.
        handler: Arc<RowsHandler>,
    },
    /// Arbitrary native logic over the transition tables (used by the
    /// materialized-view oracle baseline).
    Native(Arc<NativeTriggerFn>),
}

impl fmt::Debug for TriggerBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TriggerBody::Query { plan, .. } => write!(f, "Query({})", plan.explain().trim()),
            TriggerBody::Native(_) => f.write_str("Native(..)"),
        }
    }
}

/// A statement-level AFTER trigger.
#[derive(Debug, Clone)]
pub struct SqlTrigger {
    /// Unique trigger name.
    pub name: String,
    /// Monitored table.
    pub table: String,
    /// Monitored statement kind.
    pub event: Event,
    /// What to run when fired.
    pub body: TriggerBody,
}

/// Simple execution counters, used by benches and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Data-change statements executed.
    pub statements: u64,
    /// Trigger bodies evaluated.
    pub triggers_fired: u64,
    /// Rows visited by full table scans — `TableScan` operators plus the
    /// statement-level scan fallbacks of `update_expr`/`delete_expr`.
    /// Together with [`Stats::index_probes`] this lets tests assert
    /// probe-not-scan instead of inferring it from wall-clock time.
    pub rows_scanned: u64,
    /// Primary-key and secondary-index equality probes (index joins and
    /// keyed statement fast paths).
    pub index_probes: u64,
    /// Join build sides / stable subplan results served from the
    /// cross-firing executor cache instead of being rebuilt.
    pub build_cache_hits: u64,
    /// Footprint-latch acquisitions that had to block because another
    /// writer held part of the requested footprint (one per blocking wait;
    /// a single contended acquisition can wait more than once).
    pub latch_waits: u64,
    /// Footprint-latch acquisitions that found at least one requested
    /// table latched by another writer (one per contended acquisition).
    pub latch_conflicts: u64,
    /// Tables latched in **shared** mode by footprint-latched writers (one
    /// per read-set table per acquisition) — the read side of a trigger
    /// footprint, held concurrently by overlapping writers.
    pub latch_shared_acquisitions: u64,
    /// Tables latched in **exclusive** mode by footprint-latched writers
    /// (one per write-set table per acquisition).
    pub latch_exclusive_acquisitions: u64,
    /// Statements whose execution was folded into a coalesced batch by
    /// `Session::execute_batch` (each member of a merged run counts).
    pub batched_statements: u64,
    /// Well-formed request frames decoded by the network front door
    /// (zero for in-process sessions; bumped by `quark-server`).
    pub frames_received: u64,
    /// Frames or connections the server refused: torn/oversized/CRC-bad
    /// frames, unknown tags, and admission rejections when the worker
    /// pool's accept queue was full.
    pub frames_rejected: u64,
    /// Pipelined same-table `INSERT` runs the server coalesced into one
    /// `Session::execute_batch` call (one per coalesced run).
    pub pipelined_batches: u64,
    /// Times a connection's pipeline window filled and the server stopped
    /// reading from the socket until in-flight statements drained —
    /// explicit backpressure instead of unbounded buffering.
    pub backpressure_stalls: u64,
    /// Connections currently being served by the worker pool (a gauge,
    /// not a monotonic counter).
    pub active_connections: u64,
    /// Bytes appended to the write-ahead log (zero for in-memory
    /// databases; filled in by the storage engine one layer up).
    pub wal_bytes_written: u64,
    /// `fsync` calls issued by the write-ahead log.
    pub wal_fsyncs: u64,
    /// Group-commit fsync batches: one per `fsync` the WAL's group
    /// committer issued on behalf of every commit record appended (but not
    /// yet durable) at that moment. Under concurrent writers this stays
    /// below the committed-statement count — the whole point of group
    /// commit.
    pub group_commit_batches: u64,
    /// Checkpoints taken by the storage engine.
    pub checkpoints: u64,
    /// Buffer-pool pages evicted by the clock sweep.
    pub pages_evicted: u64,
    /// Wall-clock milliseconds the last recovery (warm open) took.
    pub recovery_ms: u64,
    /// Table accesses the `footprint-oracle` feature caught outside the
    /// session's latched footprint — a write to a table not latched
    /// exclusive, or a read of a table not latched at all. Always present
    /// so `STATS` output is feature-independent; only ever bumped when the
    /// crate is built with `--features footprint-oracle`, and **must stay
    /// zero**: a nonzero value is a proven data race in the footprint
    /// analysis.
    pub footprint_violations: u64,
}

/// Execution counters. They are bumped during statement and plan
/// execution, where only `&Database` is available (the data-change surface
/// is interior-mutable), so they live behind relaxed atomics and are
/// folded into [`Stats`] snapshots by [`Database::stats`].
#[derive(Debug, Default)]
pub(crate) struct ExecCounters {
    pub(crate) statements: AtomicU64,
    pub(crate) triggers_fired: AtomicU64,
    pub(crate) rows_scanned: AtomicU64,
    pub(crate) index_probes: AtomicU64,
    pub(crate) build_cache_hits: AtomicU64,
    pub(crate) latch_waits: AtomicU64,
    pub(crate) latch_conflicts: AtomicU64,
    pub(crate) latch_shared_acquisitions: AtomicU64,
    pub(crate) latch_exclusive_acquisitions: AtomicU64,
    pub(crate) batched_statements: AtomicU64,
    pub(crate) frames_received: AtomicU64,
    pub(crate) frames_rejected: AtomicU64,
    pub(crate) pipelined_batches: AtomicU64,
    pub(crate) backpressure_stalls: AtomicU64,
    pub(crate) active_connections: AtomicU64,
    pub(crate) footprint_violations: AtomicU64,
}

impl ExecCounters {
    fn add_statement(&self) {
        self.statements.fetch_add(1, Ordering::Relaxed);
    }

    fn add_fired(&self) {
        self.triggers_fired.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_scanned(&self, n: u64) {
        self.rows_scanned.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_probes(&self, n: u64) {
        self.index_probes.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_build_hit(&self) {
        self.build_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ExecCounters {
        ExecCounters {
            statements: AtomicU64::new(self.statements.load(Ordering::Relaxed)),
            triggers_fired: AtomicU64::new(self.triggers_fired.load(Ordering::Relaxed)),
            rows_scanned: AtomicU64::new(self.rows_scanned.load(Ordering::Relaxed)),
            index_probes: AtomicU64::new(self.index_probes.load(Ordering::Relaxed)),
            build_cache_hits: AtomicU64::new(self.build_cache_hits.load(Ordering::Relaxed)),
            latch_waits: AtomicU64::new(self.latch_waits.load(Ordering::Relaxed)),
            latch_conflicts: AtomicU64::new(self.latch_conflicts.load(Ordering::Relaxed)),
            latch_shared_acquisitions: AtomicU64::new(
                self.latch_shared_acquisitions.load(Ordering::Relaxed),
            ),
            latch_exclusive_acquisitions: AtomicU64::new(
                self.latch_exclusive_acquisitions.load(Ordering::Relaxed),
            ),
            batched_statements: AtomicU64::new(self.batched_statements.load(Ordering::Relaxed)),
            frames_received: AtomicU64::new(self.frames_received.load(Ordering::Relaxed)),
            frames_rejected: AtomicU64::new(self.frames_rejected.load(Ordering::Relaxed)),
            pipelined_batches: AtomicU64::new(self.pipelined_batches.load(Ordering::Relaxed)),
            backpressure_stalls: AtomicU64::new(self.backpressure_stalls.load(Ordering::Relaxed)),
            active_connections: AtomicU64::new(self.active_connections.load(Ordering::Relaxed)),
            footprint_violations: AtomicU64::new(self.footprint_violations.load(Ordering::Relaxed)),
        }
    }
}

/// One table's slot in the catalog: the per-table **latch** of the
/// two-level lock hierarchy. Row data sits behind it as a copy-on-write
/// `Arc<Table>`; catalog changes (create/drop/index) take `&mut Database`
/// — the global exclusive level — and never race with slot access.
type TableCell = Arc<RwLock<Arc<Table>>>;

fn new_cell(table: Table) -> TableCell {
    new_cell_arc(Arc::new(table))
}

fn new_cell_arc(table: Arc<Table>) -> TableCell {
    Arc::new(RwLock::new(table))
}

/// An in-memory relational database with statement triggers.
///
/// Every *data-change* entry point takes `&self`: per-table state lives
/// behind per-table `RwLock` latches (`TableCell`), so writers whose
/// table footprints are disjoint can run concurrently — the session layer
/// is responsible for latching a statement's full trigger footprint before
/// executing it. *Catalog* changes (create/drop table, indexes, trigger
/// DDL) still take `&mut self`, which the session layer maps to its global
/// exclusive mode.
///
/// `Clone` copies tables and trigger registrations (triggers share their
/// bodies); the oracle baseline uses clones as shadow states, and the
/// session layer clones to publish concurrent read snapshots. Tables are
/// **copy-on-write** behind `Arc`: a clone is a refcount bump per table,
/// and the first mutation of a table after a clone pays the one-off copy
/// ([`Arc::make_mut`]) — so snapshot republication never walks row
/// storage. A clone gets a **fresh executor cache**: the copy's tables
/// diverge independently while reusing the same per-table version
/// counters, so cached build sides must never cross database instances.
pub struct Database {
    tables: HashMap<String, TableCell>,
    /// `Arc`-shared so publishing a read snapshot clones a pointer, not
    /// the trigger corpus; trigger DDL copies-on-write via `Arc::make_mut`.
    triggers: Arc<Vec<Arc<SqlTrigger>>>,
    trigger_names: Arc<std::collections::HashSet<String>>,
    /// Identity for the thread-local cascade-depth bookkeeping: cascades
    /// never cross threads, but one thread may drive several database
    /// instances (oracle shadow clones), so depth is keyed on both.
    db_id: u64,
    schema_generation: u64,
    /// When set, the mutation entry points append physical [`RedoOp`]s to
    /// a thread-local buffer keyed by `db_id`; the session layer drains it
    /// per statement and hands the batch to the write-ahead log. Off by
    /// default and **never copied by `Clone`**: snapshot clones and oracle
    /// shadows must not log (their fresh `db_id` could not reach the
    /// buffer anyway, but the flag stays off for clarity).
    redo_capture: bool,
    pub(crate) counters: ExecCounters,
    pub(crate) exec_cache: ExecCache,
}

impl Default for Database {
    fn default() -> Self {
        Database {
            tables: HashMap::new(),
            triggers: Arc::new(Vec::new()),
            trigger_names: Arc::new(std::collections::HashSet::new()),
            db_id: NEXT_DB_ID.fetch_add(1, Ordering::Relaxed),
            schema_generation: 0,
            redo_capture: false,
            counters: ExecCounters::default(),
            exec_cache: ExecCache::default(),
        }
    }
}

impl Clone for Database {
    fn clone(&self) -> Self {
        Database {
            tables: self
                .tables
                .iter()
                .map(|(name, cell)| {
                    let inner = cell.read().unwrap_or_else(|e| e.into_inner());
                    (name.clone(), Arc::new(RwLock::new(Arc::clone(&inner))))
                })
                .collect(),
            triggers: Arc::clone(&self.triggers),
            trigger_names: Arc::clone(&self.trigger_names),
            db_id: NEXT_DB_ID.fetch_add(1, Ordering::Relaxed),
            schema_generation: self.schema_generation,
            redo_capture: false,
            counters: self.counters.snapshot(),
            exec_cache: ExecCache::new(self.exec_cache.is_enabled()),
        }
    }
}

/// Shared read access to one table, holding its latch for the guard's
/// lifetime. Dereferences to [`Table`].
pub struct TableRef<'a>(RwLockReadGuard<'a, Arc<Table>>);

impl Deref for TableRef<'_> {
    type Target = Table;
    fn deref(&self) -> &Table {
        &self.0
    }
}

/// Exclusive write access to one table, holding its latch for the guard's
/// lifetime. The first mutable dereference after a snapshot publication
/// pays the copy-on-write table copy ([`Arc::make_mut`]).
struct TableWrite<'a>(RwLockWriteGuard<'a, Arc<Table>>);

impl Deref for TableWrite<'_> {
    type Target = Table;
    fn deref(&self) -> &Table {
        &self.0
    }
}

impl DerefMut for TableWrite<'_> {
    fn deref_mut(&mut self) -> &mut Table {
        Arc::make_mut(&mut self.0)
    }
}

/// Global source of database-instance ids (see [`Database::db_id`]).
static NEXT_DB_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Cascade depth per database instance on this thread. A cascade runs
    /// entirely on the thread that executed its root statement, so depth
    /// needs no cross-thread coordination — but it must not live in the
    /// (now shared) `Database`, where two threads' concurrent cascades
    /// would observe each other's nesting.
    static FIRE_DEPTH: RefCell<HashMap<u64, usize>> = RefCell::new(HashMap::new());

    /// Captured redo operations per database instance on this thread (same
    /// keying rationale as `FIRE_DEPTH`: a statement and its whole cascade
    /// run on one thread, so the per-statement redo batch needs no
    /// cross-thread coordination, but two threads' concurrent latched
    /// statements must not interleave their batches).
    static REDO_BUF: RefCell<HashMap<u64, Vec<RedoOp>>> = RefCell::new(HashMap::new());
}

/// What latch coverage the current statement's scope promises (see
/// [`Database::oracle_scope`]).
#[cfg(feature = "footprint-oracle")]
enum OracleState {
    /// Global exclusive mode: every table is covered.
    Global,
    /// Footprint-latched mode: `write` tables are latched exclusive,
    /// `read` tables shared.
    Latched {
        write: BTreeSet<String>,
        read: BTreeSet<String>,
    },
}

#[cfg(feature = "footprint-oracle")]
thread_local! {
    /// Latch scopes per database instance on this thread (same keying
    /// rationale as `FIRE_DEPTH`: a statement and its whole cascade run on
    /// one thread, and one thread may drive several instances). A stack so
    /// scope installation composes; in practice one scope per statement.
    static ORACLE_SCOPES: RefCell<HashMap<u64, Vec<OracleState>>> =
        RefCell::new(HashMap::new());

    /// When nonzero, an oracle violation bumps the counter but does not
    /// panic — the escape hatch tests use to *observe* an intentional
    /// violation (see [`Database::tolerate_footprint_violations`]).
    static ORACLE_TOLERANCE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// RAII handle for a latch scope installed by [`Database::oracle_scope`] /
/// [`Database::oracle_scope_global`]; uninstalls the scope on drop (panic
/// unwind included). A zero-sized no-op unless the crate is built with the
/// `footprint-oracle` feature.
pub struct FootprintScope {
    #[cfg(feature = "footprint-oracle")]
    db_id: u64,
}

#[cfg(feature = "footprint-oracle")]
impl Drop for FootprintScope {
    fn drop(&mut self) {
        ORACLE_SCOPES.with(|m| {
            let mut m = m.borrow_mut();
            if let Some(stack) = m.get_mut(&self.db_id) {
                stack.pop();
                if stack.is_empty() {
                    m.remove(&self.db_id);
                }
            }
        });
    }
}

/// RAII handle suppressing the oracle's panic-on-violation on this thread
/// while alive (the `footprint_violations` counter still counts). Obtained
/// from [`Database::tolerate_footprint_violations`].
pub struct FootprintTolerance {
    _private: (),
}

impl Drop for FootprintTolerance {
    fn drop(&mut self) {
        #[cfg(feature = "footprint-oracle")]
        ORACLE_TOLERANCE.with(|c| c.set(c.get() - 1));
    }
}

/// Decrements the thread-local cascade depth on drop, so a panicking
/// trigger body cannot leave the depth permanently elevated.
struct DepthGuard(u64);

impl Drop for DepthGuard {
    fn drop(&mut self) {
        FIRE_DEPTH.with(|m| {
            let mut m = m.borrow_mut();
            if let Some(d) = m.get_mut(&self.0) {
                *d -= 1;
                if *d == 0 {
                    m.remove(&self.0);
                }
            }
        });
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.tables.keys().collect::<Vec<_>>())
            .field("triggers", &self.triggers.len())
            .finish()
    }
}

const MAX_TRIGGER_DEPTH: usize = 16;

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    // ------------------------------------------------------------------
    // DDL
    // ------------------------------------------------------------------

    /// Create a table. Fails if the name is taken.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        if self.tables.contains_key(&schema.name) {
            return Err(Error::TableExists(schema.name));
        }
        self.tables
            .insert(schema.name.clone(), new_cell(Table::new(schema)));
        self.schema_generation += 1;
        Ok(())
    }

    /// Add a secondary hash index on `table.column`.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<()> {
        let mut t = self.table_write(table)?;
        let col = t.schema().col(column)?;
        t.create_index(col);
        drop(t);
        self.schema_generation += 1;
        Ok(())
    }

    /// Drop a table and any triggers attached to it.
    pub fn drop_table(&mut self, table: &str) -> Result<()> {
        self.tables
            .remove(table)
            .ok_or_else(|| Error::UnknownTable(table.to_string()))?;
        let names = Arc::make_mut(&mut self.trigger_names);
        for t in self.triggers.iter().filter(|t| t.table == table) {
            names.remove(&t.name);
        }
        Arc::make_mut(&mut self.triggers).retain(|t| t.table != table);
        self.schema_generation += 1;
        Ok(())
    }

    /// Monotonic counter bumped by every schema change (table/index
    /// creation, table drop). Compiled-plan caches key on it so plans built
    /// against an older schema are never reused once the schema moves.
    pub fn schema_generation(&self) -> u64 {
        self.schema_generation
    }

    /// Snapshot of the execution counters: statement/trigger counts plus
    /// the executor's scan/probe/cache observability counters and the
    /// session layer's latch/batching contention counters.
    pub fn stats(&self) -> Stats {
        let c = &self.counters;
        Stats {
            statements: c.statements.load(Ordering::Relaxed),
            triggers_fired: c.triggers_fired.load(Ordering::Relaxed),
            rows_scanned: c.rows_scanned.load(Ordering::Relaxed),
            index_probes: c.index_probes.load(Ordering::Relaxed),
            build_cache_hits: c.build_cache_hits.load(Ordering::Relaxed),
            latch_waits: c.latch_waits.load(Ordering::Relaxed),
            latch_conflicts: c.latch_conflicts.load(Ordering::Relaxed),
            latch_shared_acquisitions: c.latch_shared_acquisitions.load(Ordering::Relaxed),
            latch_exclusive_acquisitions: c.latch_exclusive_acquisitions.load(Ordering::Relaxed),
            batched_statements: c.batched_statements.load(Ordering::Relaxed),
            frames_received: c.frames_received.load(Ordering::Relaxed),
            frames_rejected: c.frames_rejected.load(Ordering::Relaxed),
            pipelined_batches: c.pipelined_batches.load(Ordering::Relaxed),
            backpressure_stalls: c.backpressure_stalls.load(Ordering::Relaxed),
            active_connections: c.active_connections.load(Ordering::Relaxed),
            footprint_violations: c.footprint_violations.load(Ordering::Relaxed),
            // Storage counters live in the storage engine; `Quark::stats`
            // merges them in when the system was opened durably.
            wal_bytes_written: 0,
            wal_fsyncs: 0,
            group_commit_batches: 0,
            checkpoints: 0,
            pages_evicted: 0,
            recovery_ms: 0,
        }
    }

    /// Record one blocking wait during a footprint-latch acquisition
    /// (bumped by the session layer's latch manager).
    pub fn note_latch_wait(&self) {
        self.counters.latch_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` blocking waits observed by one footprint-latch
    /// acquisition (bumped by the session layer's latch manager).
    pub fn note_latch_waits(&self, n: u64) {
        self.counters.latch_waits.fetch_add(n, Ordering::Relaxed);
    }

    /// Record the per-mode table counts of one admitted footprint-latch
    /// acquisition: `shared` read-set tables and `exclusive` write-set
    /// tables.
    pub fn note_latch_acquisitions(&self, shared: u64, exclusive: u64) {
        self.counters
            .latch_shared_acquisitions
            .fetch_add(shared, Ordering::Relaxed);
        self.counters
            .latch_exclusive_acquisitions
            .fetch_add(exclusive, Ordering::Relaxed);
    }

    /// Record one contended footprint-latch acquisition (bumped by the
    /// session layer's latch manager).
    pub fn note_latch_conflict(&self) {
        self.counters
            .latch_conflicts
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` statements executed as part of one coalesced batch
    /// (bumped by `Session::execute_batch`).
    pub fn note_batched(&self, n: u64) {
        self.counters
            .batched_statements
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` well-formed request frames decoded off the wire
    /// (bumped by the `quark-server` front door).
    pub fn note_frames_received(&self, n: u64) {
        self.counters
            .frames_received
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Record one rejected frame or connection: a torn/oversized/CRC-bad
    /// frame, an unknown request tag, or a busy-rejected connection.
    pub fn note_frame_rejected(&self) {
        self.counters
            .frames_rejected
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Record one pipelined `INSERT` run coalesced into a batched
    /// execution by the server.
    pub fn note_pipelined_batch(&self) {
        self.counters
            .pipelined_batches
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Record one backpressure stall: a connection's pipeline window
    /// filled and the server stopped reading until it drained.
    pub fn note_backpressure_stall(&self) {
        self.counters
            .backpressure_stalls
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Adjust the served-connection gauge by ±1 (worker picks a
    /// connection up / finishes with it).
    pub fn note_connection(&self, open: bool) {
        if open {
            self.counters
                .active_connections
                .fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters
                .active_connections
                .fetch_sub(1, Ordering::Relaxed);
        }
    }

    // ------------------------------------------------------------------
    // Footprint oracle (the `footprint-oracle` feature)
    // ------------------------------------------------------------------

    /// Install a **latched** oracle scope for the current thread: until
    /// the returned guard drops, every table access on this database from
    /// this thread must be covered by the declared footprint — mutations
    /// by `write`, reads by `write ∪ read`. The session layer installs
    /// this around footprint-latched statement execution with exactly the
    /// table sets it latched, making the latch claim dynamically checked.
    ///
    /// No-op (and zero-cost) unless the crate is built with the
    /// `footprint-oracle` feature; callers install scopes unconditionally.
    #[allow(unused_variables)]
    pub fn oracle_scope(
        &self,
        write: &BTreeSet<String>,
        read: &BTreeSet<String>,
    ) -> FootprintScope {
        #[cfg(feature = "footprint-oracle")]
        {
            ORACLE_SCOPES.with(|m| {
                m.borrow_mut()
                    .entry(self.db_id)
                    .or_default()
                    .push(OracleState::Latched {
                        write: write.clone(),
                        read: read.clone(),
                    })
            });
            FootprintScope { db_id: self.db_id }
        }
        #[cfg(not(feature = "footprint-oracle"))]
        FootprintScope {}
    }

    /// Install a **global** oracle scope: the session holds the level-1
    /// lock exclusively, so every table is covered. See
    /// [`Database::oracle_scope`].
    pub fn oracle_scope_global(&self) -> FootprintScope {
        #[cfg(feature = "footprint-oracle")]
        {
            ORACLE_SCOPES.with(|m| {
                m.borrow_mut()
                    .entry(self.db_id)
                    .or_default()
                    .push(OracleState::Global)
            });
            FootprintScope { db_id: self.db_id }
        }
        #[cfg(not(feature = "footprint-oracle"))]
        FootprintScope {}
    }

    /// Suppress the oracle's panic-on-violation on the calling thread
    /// while the returned guard lives — the `footprint_violations`
    /// counter still counts, so a test can provoke an intentional
    /// violation and assert it was detected without unwinding.
    pub fn tolerate_footprint_violations() -> FootprintTolerance {
        #[cfg(feature = "footprint-oracle")]
        ORACLE_TOLERANCE.with(|c| c.set(c.get() + 1));
        FootprintTolerance { _private: () }
    }

    /// Assert that accessing `name` (mutating or reading) is covered by
    /// the innermost oracle scope installed on this thread for this
    /// database instance. Outside any scope — programmatic access, oracle
    /// shadow clones, recovery replay — nothing is checked.
    #[cfg(feature = "footprint-oracle")]
    fn oracle_check(&self, name: &str, mutating: bool) {
        let covered =
            ORACLE_SCOPES.with(
                |m| match m.borrow().get(&self.db_id).and_then(|s| s.last()) {
                    None | Some(OracleState::Global) => true,
                    Some(OracleState::Latched { write, read }) => {
                        write.contains(name) || (!mutating && read.contains(name))
                    }
                },
            );
        if !covered {
            self.counters
                .footprint_violations
                .fetch_add(1, Ordering::Relaxed);
            if ORACLE_TOLERANCE.with(|c| c.get()) == 0 {
                panic!(
                    "footprint oracle: {} of table `{name}` outside the latched footprint",
                    if mutating { "mutation" } else { "read" }
                );
            }
        }
    }

    #[cfg(not(feature = "footprint-oracle"))]
    #[inline(always)]
    fn oracle_check(&self, _name: &str, _mutating: bool) {}

    // ------------------------------------------------------------------
    // Redo capture (durability hooks for the storage layer)
    // ------------------------------------------------------------------

    /// Enable or disable redo capture (off by default; the storage layer
    /// turns it on when a database is opened durably). Not inherited by
    /// clones — snapshots and oracle shadows never log.
    pub fn set_redo_capture(&mut self, enabled: bool) {
        self.redo_capture = enabled;
    }

    /// `true` when the mutation entry points record redo operations.
    pub fn redo_capture_enabled(&self) -> bool {
        self.redo_capture
    }

    /// Clear this thread's redo buffer for this database. The session
    /// layer calls it at every statement start so leftovers from a
    /// panicked or abandoned earlier statement cannot leak into the next
    /// statement's log batch.
    pub fn begin_redo(&self) {
        REDO_BUF.with(|m| {
            m.borrow_mut().remove(&self.db_id);
        });
    }

    /// Drain this thread's redo buffer for this database: every physical
    /// change the statement and its whole cascade made, in apply order.
    /// Called once per latched statement — even a statement that returned
    /// an error is drained, because partial effects stay visible in the
    /// authoritative state and durability must match it.
    pub fn take_redo(&self) -> Vec<RedoOp> {
        REDO_BUF
            .with(|m| m.borrow_mut().remove(&self.db_id))
            .unwrap_or_default()
    }

    /// Apply a batch of redo operations verbatim: no triggers fire, no
    /// redo is captured, and operations are idempotent (`Put` upserts,
    /// `Del` of a missing key is a no-op). Recovery replays committed WAL
    /// batches through here — the cascade's effects were logged physically
    /// when it ran, so re-firing triggers would double-apply them.
    pub fn apply_redo(&self, ops: &[RedoOp]) -> Result<()> {
        for op in ops {
            match op {
                RedoOp::Put { table, row } => {
                    let mut t = self.table_write(table)?;
                    let key = t.schema().key_of(row);
                    t.delete(&key);
                    t.insert(row.to_vec())?;
                }
                RedoOp::Del { table, key } => {
                    self.table_write(table)?.delete(key);
                }
            }
        }
        Ok(())
    }

    /// Record one statement's physical effects (all deletions by
    /// pre-image key, then all insertions by full row — matching the
    /// two-phase apply order of `update_expr`, so key-reshuffling updates
    /// replay correctly). No-op unless capture is enabled.
    fn capture_redo(&self, table: &str, inserted: &[Row], deleted: &[Row]) {
        if !self.redo_capture || (inserted.is_empty() && deleted.is_empty()) {
            return;
        }
        let Ok(t) = self.table(table) else { return };
        let schema = t.schema_ref();
        drop(t);
        REDO_BUF.with(|m| {
            let mut m = m.borrow_mut();
            let buf = m.entry(self.db_id).or_default();
            for old in deleted {
                buf.push(RedoOp::Del {
                    table: table.to_string(),
                    key: schema.key_of(old).into_vec(),
                });
            }
            for new in inserted {
                buf.push(RedoOp::Put {
                    table: table.to_string(),
                    row: Arc::clone(new),
                });
            }
        });
    }

    /// Enable or disable the cross-firing executor cache (on by default).
    /// Disabling clears existing entries; differential tests compare a
    /// caching database against an uncached one.
    pub fn set_exec_cache_enabled(&mut self, enabled: bool) {
        self.exec_cache.set_enabled(enabled);
    }

    /// Number of live executor-cache entries (tests and leak checks).
    pub fn exec_cache_len(&self) -> usize {
        self.exec_cache.len()
    }

    /// Look up a table, taking its latch in shared mode for the guard's
    /// lifetime. Uncontended in practice: concurrent access to the *same*
    /// table's slot only happens when a raw [`Database`] reference is read
    /// while a latched writer runs (reads through the session surface use
    /// published snapshots, which are separate instances).
    pub fn table(&self, name: &str) -> Result<TableRef<'_>> {
        self.oracle_check(name, false);
        self.tables
            .get(name)
            .map(|cell| TableRef(cell.read().unwrap_or_else(|e| e.into_inner())))
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    /// Exclusive table access, copy-on-write: a table still shared with a
    /// clone (a published read snapshot) is copied once on first mutable
    /// dereference, so writers never mutate storage a snapshot reader is
    /// walking. Mutual exclusion between whole *statements* on the same
    /// table is the session latch manager's job; this latch only protects
    /// the slot itself.
    fn table_write(&self, name: &str) -> Result<TableWrite<'_>> {
        self.oracle_check(name, true);
        self.tables
            .get(name)
            .map(|cell| TableWrite(cell.write().unwrap_or_else(|e| e.into_inner())))
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    /// Replace this database's versions of `tables` with `from`'s current
    /// ones (a refcount bump per table; missing tables are skipped). The
    /// session layer folds a committed writer's footprint into the
    /// published snapshot this way — an `Arc` swap per table instead of a
    /// full-state clone.
    pub fn adopt_tables_from<I, S>(&mut self, from: &Database, tables: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for t in tables {
            let name = t.as_ref();
            if let Some(src) = from.tables.get(name) {
                let inner = Arc::clone(&src.read().unwrap_or_else(|e| e.into_inner()));
                self.tables.insert(name.to_string(), new_cell_arc(inner));
            }
        }
    }

    /// `true` if `name` exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all tables (unordered).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    // ------------------------------------------------------------------
    // Triggers
    // ------------------------------------------------------------------

    /// Register a statement-level AFTER trigger.
    pub fn create_trigger(&mut self, trigger: SqlTrigger) -> Result<()> {
        if self.trigger_names.contains(&trigger.name) {
            return Err(Error::TriggerExists(trigger.name));
        }
        self.table(&trigger.table)?;
        Arc::make_mut(&mut self.trigger_names).insert(trigger.name.clone());
        Arc::make_mut(&mut self.triggers).push(Arc::new(trigger));
        Ok(())
    }

    /// Remove a trigger by name.
    pub fn drop_trigger(&mut self, name: &str) -> Result<()> {
        if !Arc::make_mut(&mut self.trigger_names).remove(name) {
            return Err(Error::UnknownTrigger(name.to_string()));
        }
        Arc::make_mut(&mut self.triggers).retain(|t| t.name != name);
        Ok(())
    }

    /// Number of registered SQL triggers (the paper's scalability axis).
    pub fn trigger_count(&self) -> usize {
        self.triggers.len()
    }

    /// Iterate the registered SQL triggers (name/table/event inspection —
    /// the footprint analysis of the session layer walks these).
    pub fn triggers(&self) -> impl Iterator<Item = &SqlTrigger> {
        self.triggers.iter().map(Arc::as_ref)
    }

    // ------------------------------------------------------------------
    // Statements (each fires AFTER triggers once)
    // ------------------------------------------------------------------

    /// `INSERT INTO table VALUES rows…` as one statement.
    pub fn insert(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize> {
        let n = rows.len();
        let mut inserted = Vec::with_capacity(n);
        {
            let mut t = self.table_write(table)?;
            for r in rows {
                inserted.push(t.insert(r)?);
            }
        }
        self.counters.add_statement();
        self.capture_redo(table, &inserted, &[]);
        if !inserted.is_empty() {
            self.after_statement(TransitionTables {
                table: table.to_string(),
                event: Event::Insert,
                inserted,
                deleted: vec![],
            })?;
        }
        Ok(n)
    }

    /// Single-row insert convenience.
    pub fn insert_row(&self, table: &str, row: Vec<Value>) -> Result<()> {
        self.insert(table, vec![row]).map(|_| ())
    }

    /// `UPDATE table SET … WHERE pk = key` as one statement. `assignments`
    /// are `(column index, new value)` pairs. Returns `false` when no row
    /// has that key.
    pub fn update_by_key(
        &self,
        table: &str,
        key: &[Value],
        assignments: &[(usize, Value)],
    ) -> Result<bool> {
        self.counters.add_probes(1);
        let (old, new) = {
            let mut t = self.table_write(table)?;
            let Some(existing) = t.get(key) else {
                return Ok(false);
            };
            let mut next: Vec<Value> = existing.to_vec();
            for (col, v) in assignments {
                if *col >= next.len() {
                    return Err(Error::UnknownColumn(table.to_string(), col.to_string()));
                }
                next[*col] = v.clone();
            }
            t.update(key, next)?
        };
        self.counters.add_statement();
        self.capture_redo(
            table,
            std::slice::from_ref(&new),
            std::slice::from_ref(&old),
        );
        self.after_statement(TransitionTables {
            table: table.to_string(),
            event: Event::Update,
            inserted: vec![new],
            deleted: vec![old],
        })?;
        Ok(true)
    }

    /// `UPDATE table SET row = f(row) WHERE pred(row)` as one statement.
    pub fn update_where(
        &self,
        table: &str,
        pred: impl Fn(&Row) -> bool,
        f: impl Fn(&Row) -> Vec<Value>,
    ) -> Result<usize> {
        let (deleted, inserted) = {
            let mut t = self.table_write(table)?;
            let keys: Vec<_> = t
                .iter()
                .filter(|r| pred(r))
                .map(|r| t.schema().key_of(r))
                .collect();
            let mut deleted = Vec::with_capacity(keys.len());
            let mut inserted = Vec::with_capacity(keys.len());
            for k in keys {
                let existing = t.get(&k).expect("key collected from scan").clone();
                let next = f(&existing);
                let (old, new) = t.update(&k, next)?;
                deleted.push(old);
                inserted.push(new);
            }
            (deleted, inserted)
        };
        self.counters.add_statement();
        self.capture_redo(table, &inserted, &deleted);
        let n = inserted.len();
        if n > 0 {
            self.after_statement(TransitionTables {
                table: table.to_string(),
                event: Event::Update,
                inserted,
                deleted,
            })?;
        }
        Ok(n)
    }

    /// `UPDATE table SET col = expr, … WHERE pred` as one statement, with
    /// both the predicate and the assignment right-hand sides as
    /// [`Expr`](crate::expr::Expr)essions over the *pre-update* row.
    ///
    /// Updates apply *simultaneously* (standard SQL statement semantics):
    /// all affected rows are removed, then all replacements inserted, so a
    /// key-reshuffling UPDATE (`SET id = id + 1`) does not depend on apply
    /// order. Evaluation errors and key collisions abort the statement
    /// atomically — no rows change and no triggers fire.
    pub fn update_expr(
        &self,
        table: &str,
        pred: Option<&crate::expr::Expr>,
        assignments: &[(usize, crate::expr::Expr)],
    ) -> Result<usize> {
        let mut probed = 0u64;
        let mut scanned = 0u64;
        let (deleted, inserted) = {
            let mut t = self.table_write(table)?;
            let arity = t.schema().arity();
            for (col, _) in assignments {
                if *col >= arity {
                    return Err(Error::UnknownColumn(table.to_string(), col.to_string()));
                }
            }
            let mut targets: Vec<(Box<[Value]>, Vec<Value>)> = Vec::new();
            // Keyed fast path: a predicate that is an equality on the
            // primary key or an indexed column probes the affected rows
            // directly (the probe is exactly the predicate, so no residual
            // evaluation is needed); anything else scans.
            match pred.and_then(|p| probe_keys(&t, p)) {
                Some(keys) => {
                    probed = 1;
                    for k in keys {
                        let r = t.get(&k).expect("probed key exists");
                        let mut next: Vec<Value> = r.to_vec();
                        for (col, e) in assignments {
                            next[*col] = e.eval(r)?;
                        }
                        targets.push((k, next));
                    }
                }
                None => {
                    scanned = t.len() as u64;
                    for r in t.iter() {
                        let keep = match pred {
                            Some(p) => p.eval(r)?.is_true(),
                            None => true,
                        };
                        if !keep {
                            continue;
                        }
                        let mut next: Vec<Value> = r.to_vec();
                        for (col, e) in assignments {
                            next[*col] = e.eval(r)?;
                        }
                        targets.push((t.schema().key_of(r), next));
                    }
                }
            }
            // Phase 1: remove every affected row.
            let mut deleted = Vec::with_capacity(targets.len());
            for (k, _) in &targets {
                deleted.push(t.delete(k).expect("key collected from scan"));
            }
            // Phase 2: insert the replacements; on failure (duplicate key
            // against an untouched row or another replacement, or a type
            // mismatch) roll everything back and report the error.
            let mut inserted = Vec::with_capacity(targets.len());
            let mut failure = None;
            for (_, next) in targets {
                match t.insert(next) {
                    Ok(new) => inserted.push(new),
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            if let Some(e) = failure {
                for new in &inserted {
                    let k = t.schema().key_of(new);
                    t.delete(&k).expect("rollback removes inserted row");
                }
                for old in deleted {
                    t.insert(old.to_vec()).expect("rollback restores prior row");
                }
                return Err(e);
            }
            (deleted, inserted)
        };
        self.note_access(probed, scanned);
        self.counters.add_statement();
        self.capture_redo(table, &inserted, &deleted);
        let n = inserted.len();
        if n > 0 {
            self.after_statement(TransitionTables {
                table: table.to_string(),
                event: Event::Update,
                inserted,
                deleted,
            })?;
        }
        Ok(n)
    }

    /// `DELETE FROM table WHERE pred` as one statement, with the predicate
    /// as an [`Expr`](crate::expr::Expr)ession. Evaluation errors abort the
    /// statement before any row changes. Indexed-equality predicates probe
    /// the affected rows instead of scanning (see [`Database::update_expr`]).
    pub fn delete_expr(&self, table: &str, pred: Option<&crate::expr::Expr>) -> Result<usize> {
        let mut probed = 0u64;
        let mut scanned = 0u64;
        let deleted = {
            let mut t = self.table_write(table)?;
            let keys = match pred.and_then(|p| probe_keys(&t, p)) {
                Some(keys) => {
                    probed = 1;
                    keys
                }
                None => {
                    scanned = t.len() as u64;
                    let mut keys = Vec::new();
                    for r in t.iter() {
                        let hit = match pred {
                            Some(p) => p.eval(r)?.is_true(),
                            None => true,
                        };
                        if hit {
                            keys.push(t.schema().key_of(r));
                        }
                    }
                    keys
                }
            };
            let mut deleted = Vec::with_capacity(keys.len());
            for k in keys {
                if let Some(row) = t.delete(&k) {
                    deleted.push(row);
                }
            }
            deleted
        };
        self.note_access(probed, scanned);
        self.counters.add_statement();
        self.capture_redo(table, &[], &deleted);
        let n = deleted.len();
        if n > 0 {
            self.after_statement(TransitionTables {
                table: table.to_string(),
                event: Event::Delete,
                inserted: vec![],
                deleted,
            })?;
        }
        Ok(n)
    }

    /// `DELETE FROM table WHERE pk = key` as one statement.
    pub fn delete_by_key(&self, table: &str, key: &[Value]) -> Result<bool> {
        self.counters.add_probes(1);
        let old = self.table_write(table)?.delete(key);
        self.counters.add_statement();
        match old {
            None => Ok(false),
            Some(row) => {
                self.capture_redo(table, &[], std::slice::from_ref(&row));
                self.after_statement(TransitionTables {
                    table: table.to_string(),
                    event: Event::Delete,
                    inserted: vec![],
                    deleted: vec![row],
                })?;
                Ok(true)
            }
        }
    }

    /// `DELETE FROM table WHERE pred(row)` as one statement.
    pub fn delete_where(&self, table: &str, pred: impl Fn(&Row) -> bool) -> Result<usize> {
        let deleted = {
            let mut t = self.table_write(table)?;
            let keys: Vec<_> = t
                .iter()
                .filter(|r| pred(r))
                .map(|r| t.schema().key_of(r))
                .collect();
            let mut deleted = Vec::with_capacity(keys.len());
            for k in keys {
                if let Some(row) = t.delete(&k) {
                    deleted.push(row);
                }
            }
            deleted
        };
        self.counters.add_statement();
        self.capture_redo(table, &[], &deleted);
        let n = deleted.len();
        if n > 0 {
            self.after_statement(TransitionTables {
                table: table.to_string(),
                event: Event::Delete,
                inserted: vec![],
                deleted,
            })?;
        }
        Ok(n)
    }

    /// Bulk load without firing triggers (initial data population, like
    /// loading a warehouse before enabling triggers).
    pub fn load(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize> {
        let mut t = self.table_write(table)?;
        let n = rows.len();
        let mut loaded = Vec::new();
        for r in rows {
            let row = t.insert(r)?;
            if self.redo_capture {
                loaded.push(row);
            }
        }
        drop(t);
        self.capture_redo(table, &loaded, &[]);
        Ok(n)
    }

    /// Maintenance deletion without firing triggers — the mirror of
    /// [`Database::load`], used for internal bookkeeping tables (e.g.
    /// removing a stale constants-table row when a grouped trigger leaves
    /// its set). Returns the number of rows removed.
    pub fn unload_where(&self, table: &str, pred: impl Fn(&Row) -> bool) -> Result<usize> {
        let mut t = self.table_write(table)?;
        let keys: Vec<_> = t
            .iter()
            .filter(|r| pred(r))
            .map(|r| t.schema().key_of(r))
            .collect();
        let n = keys.len();
        let mut removed = Vec::new();
        for k in keys {
            if let Some(row) = t.delete(&k) {
                if self.redo_capture {
                    removed.push(row);
                }
            }
        }
        drop(t);
        self.capture_redo(table, &[], &removed);
        Ok(n)
    }

    // ------------------------------------------------------------------
    // Trigger dispatch
    // ------------------------------------------------------------------

    /// Fold `(probes, scanned-row)` deltas from the statement fast paths
    /// into the executor counters.
    fn note_access(&self, probed: u64, scanned: u64) {
        if probed > 0 {
            self.counters.add_probes(probed);
        }
        if scanned > 0 {
            self.counters.add_scanned(scanned);
        }
    }

    fn after_statement(&self, trans: TransitionTables) -> Result<()> {
        let matching: Vec<Arc<SqlTrigger>> = self
            .triggers
            .iter()
            .filter(|t| t.table == trans.table && t.event == trans.event)
            .cloned()
            .collect();
        if matching.is_empty() {
            return Ok(());
        }
        let admitted = FIRE_DEPTH.with(|m| {
            let mut m = m.borrow_mut();
            let d = m.entry(self.db_id).or_insert(0);
            if *d >= MAX_TRIGGER_DEPTH {
                false
            } else {
                *d += 1;
                true
            }
        });
        if !admitted {
            return Err(Error::TriggerDepthExceeded);
        }
        // Unwind-safe decrement: a panicking trigger body must not leave
        // this thread's depth for `db_id` permanently elevated.
        let _guard = DepthGuard(self.db_id);
        self.fire_all(&matching, &trans)
    }

    fn fire_all(&self, triggers: &[Arc<SqlTrigger>], trans: &TransitionTables) -> Result<()> {
        for t in triggers {
            self.counters.add_fired();
            match &t.body {
                TriggerBody::Query { plan, handler } => {
                    let rows: Vec<Row> = {
                        let ctx = ExecContext::new(self, Some(trans));
                        execute(plan, &ctx)?.iter().cloned().collect()
                    };
                    handler(self, rows)?;
                }
                TriggerBody::Native(f) => f(self, trans)?,
            }
        }
        Ok(())
    }
}

/// Collect `(column, literal)` pairs when `pred` is a pure conjunction of
/// `col = literal` equalities (either operand order). Rejects duplicate
/// columns and NULL/NaN literals, whose SQL comparison semantics (`NULL =
/// NULL` is unknown, `NaN` compares to nothing) differ from the total
/// key-equality an index probe would apply.
fn equality_pairs(pred: &Expr, out: &mut Vec<(usize, Value)>) -> bool {
    match pred {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => equality_pairs(left, out) && equality_pairs(right, out),
        Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } => {
            let (col, lit) = match (left.as_ref(), right.as_ref()) {
                (Expr::Col(c), Expr::Lit(v)) | (Expr::Lit(v), Expr::Col(c)) => (*c, v),
                _ => return false,
            };
            if lit.is_null() || matches!(lit, Value::Double(d) if d.is_nan()) {
                return false;
            }
            if out.iter().any(|(seen, _)| *seen == col) {
                return false;
            }
            out.push((col, lit.clone()));
            true
        }
        _ => false,
    }
}

/// A probe literal is only equivalent to the predicate's SQL comparison
/// when its type lines up with the column's declared type (numerics are
/// interchangeable: storage order and hashing unify `Int`/`Double`).
/// Cross-kind comparisons like `str_col = 5` atomize in SQL but would
/// miss under key equality, so they fall back to the scan path. Shared
/// with the textual layer's keyed fast path ([`crate::sql`]).
pub(crate) fn probe_compatible(lit: &Value, ty: ColumnType) -> bool {
    matches!(
        (lit, ty),
        (
            Value::Int(_) | Value::Double(_),
            ColumnType::Int | ColumnType::Double
        ) | (Value::Str(_), ColumnType::Str)
            | (Value::Bool(_), ColumnType::Bool)
    )
}

/// Primary keys of the rows matching an indexed-equality predicate: the
/// equalities cover the full primary key (one PK probe) or a single
/// secondary-indexed column (one index probe). `None` when the predicate
/// is not probeable — callers fall back to the full scan.
fn probe_keys(t: &Table, pred: &Expr) -> Option<Vec<Key>> {
    let mut pairs = Vec::new();
    if !equality_pairs(pred, &mut pairs) {
        return None;
    }
    let schema = t.schema();
    if pairs
        .iter()
        .any(|(c, v)| *c >= schema.arity() || !probe_compatible(v, schema.columns[*c].ty))
    {
        return None;
    }
    let pk = &schema.primary_key;
    if pairs.len() == pk.len() && pk.iter().all(|c| pairs.iter().any(|(pc, _)| pc == c)) {
        let key: Key = pk
            .iter()
            .map(|c| {
                pairs
                    .iter()
                    .find(|(pc, _)| pc == c)
                    .expect("coverage checked")
                    .1
                    .clone()
            })
            .collect();
        return Some(t.get(&key).map(|r| schema.key_of(r)).into_iter().collect());
    }
    if let [(col, value)] = pairs.as_slice() {
        if t.has_index(*col) {
            let rows = t.index_lookup(*col, value).ok()?;
            return Some(rows.iter().map(|r| schema.key_of(r)).collect());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PhysicalPlan, TransitionSide};
    use crate::schema::ColumnDef;
    use crate::value::ColumnType;
    use std::sync::Mutex;

    fn db_with_vendor() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "vendor",
                vec![
                    ColumnDef::new("vid", ColumnType::Str),
                    ColumnDef::new("pid", ColumnType::Str),
                    ColumnDef::new("price", ColumnType::Double),
                ],
                &["vid", "pid"],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    fn vrow(vid: &str, pid: &str, price: f64) -> Vec<Value> {
        vec![Value::str(vid), Value::str(pid), Value::Double(price)]
    }

    #[test]
    fn insert_statement_fires_insert_trigger_with_delta() {
        let mut db = db_with_vendor();
        let seen = Arc::new(Mutex::new(Vec::<usize>::new()));
        let seen2 = Arc::clone(&seen);
        db.create_trigger(SqlTrigger {
            name: "t1".into(),
            table: "vendor".into(),
            event: Event::Insert,
            body: TriggerBody::Native(Arc::new(move |_db, trans| {
                seen2.lock().unwrap().push(trans.inserted.len());
                assert!(trans.deleted.is_empty());
                Ok(())
            })),
        })
        .unwrap();
        // One statement inserting two rows -> one firing with |Δ| = 2.
        db.insert("vendor", vec![vrow("a", "P1", 1.0), vrow("b", "P1", 2.0)])
            .unwrap();
        assert_eq!(*seen.lock().unwrap(), vec![2]);
        // Wrong-event triggers don't fire.
        db.update_by_key(
            "vendor",
            &[Value::str("a"), Value::str("P1")],
            &[(2, Value::Double(9.0))],
        )
        .unwrap();
        assert_eq!(*seen.lock().unwrap(), vec![2]);
    }

    #[test]
    fn update_statement_provides_old_and_new_rows() {
        let mut db = db_with_vendor();
        db.load("vendor", vec![vrow("a", "P1", 1.0)]).unwrap();
        let seen = Arc::new(Mutex::new(Vec::<(Value, Value)>::new()));
        let seen2 = Arc::clone(&seen);
        db.create_trigger(SqlTrigger {
            name: "t".into(),
            table: "vendor".into(),
            event: Event::Update,
            body: TriggerBody::Native(Arc::new(move |_db, trans| {
                seen2
                    .lock()
                    .unwrap()
                    .push((trans.deleted[0][2].clone(), trans.inserted[0][2].clone()));
                Ok(())
            })),
        })
        .unwrap();
        db.update_by_key(
            "vendor",
            &[Value::str("a"), Value::str("P1")],
            &[(2, Value::Double(7.5))],
        )
        .unwrap();
        assert_eq!(
            *seen.lock().unwrap(),
            vec![(Value::Double(1.0), Value::Double(7.5))]
        );
    }

    #[test]
    fn query_trigger_reads_transition_scan() {
        let mut db = db_with_vendor();
        db.create_table(
            TableSchema::new(
                "log",
                vec![ColumnDef::new("vid", ColumnType::Str)],
                &["vid"],
            )
            .unwrap(),
        )
        .unwrap();
        let plan = PhysicalPlan::Project {
            input: PhysicalPlan::TransitionScan {
                table: "vendor".into(),
                side: TransitionSide::Delta,
                pruned: false,
            }
            .into_ref(),
            exprs: vec![crate::expr::Expr::col(0)],
        }
        .into_ref();
        db.create_trigger(SqlTrigger {
            name: "log_inserts".into(),
            table: "vendor".into(),
            event: Event::Insert,
            body: TriggerBody::Query {
                plan,
                handler: Arc::new(|db, rows| {
                    for r in rows {
                        db.insert_row("log", r.to_vec())?;
                    }
                    Ok(())
                }),
            },
        })
        .unwrap();
        db.insert("vendor", vec![vrow("a", "P1", 1.0), vrow("b", "P2", 2.0)])
            .unwrap();
        assert_eq!(db.table("log").unwrap().len(), 2);
    }

    #[test]
    fn load_does_not_fire_triggers() {
        let mut db = db_with_vendor();
        let fired = Arc::new(Mutex::new(0u32));
        let fired2 = Arc::clone(&fired);
        db.create_trigger(SqlTrigger {
            name: "t".into(),
            table: "vendor".into(),
            event: Event::Insert,
            body: TriggerBody::Native(Arc::new(move |_, _| {
                *fired2.lock().unwrap() += 1;
                Ok(())
            })),
        })
        .unwrap();
        db.load("vendor", vec![vrow("a", "P1", 1.0)]).unwrap();
        assert_eq!(*fired.lock().unwrap(), 0);
    }

    #[test]
    fn cascades_are_depth_limited() {
        let mut db = db_with_vendor();
        db.create_table(
            TableSchema::new("ping", vec![ColumnDef::new("n", ColumnType::Int)], &["n"]).unwrap(),
        )
        .unwrap();
        // Trigger re-inserts into the same table with n+1: unbounded cascade.
        db.create_trigger(SqlTrigger {
            name: "loop".into(),
            table: "ping".into(),
            event: Event::Insert,
            body: TriggerBody::Native(Arc::new(|db, trans| {
                let Value::Int(n) = trans.inserted[0][0] else {
                    unreachable!()
                };
                db.insert_row("ping", vec![Value::Int(n + 1)])
            })),
        })
        .unwrap();
        let err = db.insert_row("ping", vec![Value::Int(0)]).unwrap_err();
        assert_eq!(err, Error::TriggerDepthExceeded);
    }

    #[test]
    fn duplicate_trigger_names_rejected_and_droppable() {
        let mut db = db_with_vendor();
        let body = TriggerBody::Native(Arc::new(|_, _| Ok(())));
        let t = SqlTrigger {
            name: "t".into(),
            table: "vendor".into(),
            event: Event::Insert,
            body: body.clone(),
        };
        db.create_trigger(t.clone()).unwrap();
        assert!(matches!(db.create_trigger(t), Err(Error::TriggerExists(_))));
        assert_eq!(db.trigger_count(), 1);
        db.drop_trigger("t").unwrap();
        assert_eq!(db.trigger_count(), 0);
        assert!(matches!(
            db.drop_trigger("t"),
            Err(Error::UnknownTrigger(_))
        ));
    }

    #[test]
    fn update_expr_probes_primary_key_equality() {
        let db = db_with_vendor();
        db.load("vendor", vec![vrow("a", "P1", 1.0), vrow("b", "P1", 2.0)])
            .unwrap();
        let before = db.stats();
        // price = price * 2 is a non-literal assignment, so the sql-layer
        // keyed fast path does not apply; the expr layer must still probe.
        let pred = Expr::bin(
            BinOp::And,
            Expr::eq(Expr::col(0), Expr::lit("a")),
            Expr::eq(Expr::col(1), Expr::lit("P1")),
        );
        let double = Expr::bin(BinOp::Mul, Expr::col(2), Expr::lit(2.0));
        let n = db
            .update_expr("vendor", Some(&pred), &[(2, double)])
            .unwrap();
        assert_eq!(n, 1);
        let after = db.stats();
        assert_eq!(after.rows_scanned, before.rows_scanned, "no scan");
        assert!(after.index_probes > before.index_probes);
        assert_eq!(
            db.table("vendor")
                .unwrap()
                .get(&[Value::str("a"), Value::str("P1")])
                .unwrap()[2],
            Value::Double(2.0)
        );
    }

    #[test]
    fn delete_expr_probes_secondary_index() {
        let mut db = db_with_vendor();
        db.create_index("vendor", "pid").unwrap();
        db.load(
            "vendor",
            vec![
                vrow("a", "P1", 1.0),
                vrow("b", "P1", 2.0),
                vrow("c", "P2", 3.0),
            ],
        )
        .unwrap();
        let before = db.stats();
        let pred = Expr::eq(Expr::col(1), Expr::lit("P1"));
        let n = db.delete_expr("vendor", Some(&pred)).unwrap();
        assert_eq!(n, 2);
        let after = db.stats();
        assert_eq!(after.rows_scanned, before.rows_scanned, "no scan");
        assert!(after.index_probes > before.index_probes);
        assert_eq!(db.table("vendor").unwrap().len(), 1);
    }

    #[test]
    fn probe_fast_path_skips_null_and_type_mismatched_literals() {
        let db = db_with_vendor();
        db.load("vendor", vec![vrow("a", "P1", 1.0)]).unwrap();
        let before = db.stats();
        // `vid = NULL` is unknown for every row: must delete nothing (a
        // naive key probe on the NULL literal would behave differently).
        let pred = Expr::bin(
            BinOp::And,
            Expr::eq(Expr::col(0), Expr::lit(Value::Null)),
            Expr::eq(Expr::col(1), Expr::lit("P1")),
        );
        assert_eq!(db.delete_expr("vendor", Some(&pred)).unwrap(), 0);
        // A numeric literal against a string key column falls back to the
        // scan path, where SQL atomization applies.
        let pred = Expr::bin(
            BinOp::And,
            Expr::eq(Expr::col(0), Expr::lit(5i64)),
            Expr::eq(Expr::col(1), Expr::lit("P1")),
        );
        assert_eq!(db.delete_expr("vendor", Some(&pred)).unwrap(), 0);
        let after = db.stats();
        assert!(
            after.rows_scanned > before.rows_scanned,
            "fell back to scan"
        );
        assert_eq!(db.table("vendor").unwrap().len(), 1);
    }

    #[test]
    fn nan_equality_on_indexed_column_scans_and_matches_nothing() {
        let mut db = db_with_vendor();
        db.create_index("vendor", "price").unwrap();
        db.load(
            "vendor",
            vec![vrow("a", "P1", f64::NAN), vrow("b", "P1", 2.0)],
        )
        .unwrap();
        let before = db.stats();
        // SQL comparison: `NaN = NaN` is unknown, so nothing matches. A key
        // probe through the index would use total equality (NaN == NaN) and
        // wrongly delete the row — the NaN literal must force the scan.
        let pred = Expr::eq(Expr::col(2), Expr::lit(f64::NAN));
        assert_eq!(db.delete_expr("vendor", Some(&pred)).unwrap(), 0);
        let after = db.stats();
        assert!(
            after.rows_scanned > before.rows_scanned,
            "fell back to scan"
        );
        assert_eq!(after.index_probes, before.index_probes, "no index probe");
        assert_eq!(db.table("vendor").unwrap().len(), 2);
    }

    #[test]
    fn type_mismatched_indexed_equality_scans_and_atomizes() {
        let mut db = db_with_vendor();
        db.create_index("vendor", "pid").unwrap();
        db.load("vendor", vec![vrow("a", "5", 1.0), vrow("b", "P1", 2.0)])
            .unwrap();
        let before = db.stats();
        // `pid = 5` compares an Int literal against a TEXT column: SQL
        // atomization matches the row whose pid is '5', which an index
        // probe keyed on Int(5) would miss (probe-miss, not 1 row).
        let pred = Expr::eq(Expr::col(1), Expr::lit(5i64));
        assert_eq!(db.delete_expr("vendor", Some(&pred)).unwrap(), 1);
        let after = db.stats();
        assert!(
            after.rows_scanned > before.rows_scanned,
            "fell back to scan"
        );
        assert_eq!(after.index_probes, before.index_probes, "no index probe");
        assert_eq!(db.table("vendor").unwrap().len(), 1);
    }

    #[test]
    fn update_where_batches_into_one_statement() {
        let mut db = db_with_vendor();
        db.load(
            "vendor",
            vec![
                vrow("a", "P1", 1.0),
                vrow("b", "P1", 2.0),
                vrow("c", "P2", 3.0),
            ],
        )
        .unwrap();
        let firings = Arc::new(Mutex::new(Vec::<usize>::new()));
        let f2 = Arc::clone(&firings);
        db.create_trigger(SqlTrigger {
            name: "t".into(),
            table: "vendor".into(),
            event: Event::Update,
            body: TriggerBody::Native(Arc::new(move |_, trans| {
                f2.lock().unwrap().push(trans.inserted.len());
                Ok(())
            })),
        })
        .unwrap();
        let n = db
            .update_where(
                "vendor",
                |r| r[1] == Value::str("P1"),
                |r| {
                    let mut v = r.to_vec();
                    v[2] = Value::Double(99.0);
                    v
                },
            )
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(*firings.lock().unwrap(), vec![2]);
    }
}
