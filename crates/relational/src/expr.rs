//! Scalar expressions and aggregate functions embedded in physical plans.
//!
//! XQGM embeds XML-manipulating functions inside relational operators
//! (§2.1); the same applies here: [`ScalarFunc::XmlElement`] is the element
//! constructor, [`AggFunc::XmlAgg`] is `aggXMLFrag()`, and the XML
//! navigation functions support evaluating trigger conditions that were not
//! pushed down to pure relational selections.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use quark_xml::{element, text, XmlNode, XmlNodeRef};

use crate::value::{Row, Value};
use crate::{Error, Result};

/// Binary operators. Comparisons yield `Bool` (NULL-safe: unknown → NULL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // arithmetic/comparison/logical operators, self-describing
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        f.write_str(s)
    }
}

/// Scalar functions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ScalarFunc {
    /// XML element constructor. The first `attrs.len()` arguments supply
    /// attribute values (atomized to strings); remaining arguments become
    /// children. Scalar children are wrapped in text nodes; XML fragment
    /// children (see [`xml_fragment`]) are spliced.
    XmlElement {
        /// Tag name.
        name: String,
        /// Attribute names; values come from the leading arguments.
        attrs: Vec<String>,
    },
    /// Wrap a scalar in a named element: `XmlWrap("pid")(v) = <pid>v</pid>`.
    XmlWrap(String),
    /// Attribute access on an XML value: `@name`.
    XmlAttr(String),
    /// Child elements with a tag name, as a fragment (`child::name`).
    XmlChildren(String),
    /// Descendant elements with a tag name, as a fragment (`descendant::`).
    XmlDescendants(String),
    /// Number of nodes in an XML value (fragment → child count, element → 1,
    /// NULL → 0). Used for `count()` over already-constructed nodes.
    NodeCount,
    /// Atomized string value of an XML node (XPath `string()`).
    XmlString,
    /// String concatenation of all arguments (NULL → "").
    Concat,
    /// First non-NULL argument.
    Coalesce,
}

/// A scalar expression evaluated against one row.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Input column by position.
    Col(usize),
    /// Literal value.
    Lit(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation (NULL-preserving).
    Not(Box<Expr>),
    /// `IS NULL` test.
    IsNull(Box<Expr>),
    /// Function application.
    Func(ScalarFunc, Vec<Expr>),
}

impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Binary op helper.
    pub fn bin(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Equality comparison helper.
    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::bin(BinOp::Eq, left, right)
    }

    /// Conjunction of a list of predicates (empty → TRUE).
    pub fn and_all(mut preds: Vec<Expr>) -> Expr {
        match preds.len() {
            0 => Expr::lit(true),
            1 => preds.pop().expect("len checked"),
            _ => {
                let mut it = preds.into_iter();
                let first = it.next().expect("len checked");
                it.fold(first, |acc, p| Expr::bin(BinOp::And, acc, p))
            }
        }
    }

    /// Evaluate against a row.
    pub fn eval(&self, row: &[Value]) -> Result<Value> {
        match self {
            Expr::Col(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| Error::Eval(format!("column {i} out of range ({})", row.len()))),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Binary { op, left, right } => {
                // Short-circuit three-valued logic for AND/OR.
                match op {
                    BinOp::And | BinOp::Or => {
                        let l = left.eval(row)?;
                        return eval_logic(*op, l, || right.eval(row));
                    }
                    _ => {}
                }
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                eval_binary(*op, &l, &r)
            }
            Expr::Not(e) => match e.eval(row)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                Value::Null => Ok(Value::Null),
                other => Err(Error::Eval(format!("NOT of non-boolean {other:?}"))),
            },
            Expr::IsNull(e) => Ok(Value::Bool(e.eval(row)?.is_null())),
            Expr::Func(f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(row)?);
                }
                eval_func(f, vals)
            }
        }
    }

    /// All column indices referenced by this expression.
    pub fn columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Col(i) => out.push(*i),
            Expr::Lit(_) => {}
            Expr::Binary { left, right, .. } => {
                left.columns(out);
                right.columns(out);
            }
            Expr::Not(e) | Expr::IsNull(e) => e.columns(out),
            Expr::Func(_, args) => {
                for a in args {
                    a.columns(out);
                }
            }
        }
    }

    /// Rewrite column references through `map` (old index → new index).
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(map(*i)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.remap_columns(map)),
                right: Box::new(right.remap_columns(map)),
            },
            Expr::Not(e) => Expr::Not(Box::new(e.remap_columns(map))),
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.remap_columns(map))),
            Expr::Func(f, args) => Expr::Func(
                f.clone(),
                args.iter().map(|a| a.remap_columns(map)).collect(),
            ),
        }
    }
}

fn eval_logic(op: BinOp, left: Value, right: impl FnOnce() -> Result<Value>) -> Result<Value> {
    let to_opt = |v: Value| -> Result<Option<bool>> {
        match v {
            Value::Bool(b) => Ok(Some(b)),
            Value::Null => Ok(None),
            other => Err(Error::Eval(format!("logical op on non-boolean {other:?}"))),
        }
    };
    let l = to_opt(left)?;
    match (op, l) {
        (BinOp::And, Some(false)) => Ok(Value::Bool(false)),
        (BinOp::Or, Some(true)) => Ok(Value::Bool(true)),
        _ => {
            let r = to_opt(right()?)?;
            let out = match op {
                BinOp::And => match (l, r) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                },
                BinOp::Or => match (l, r) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                },
                _ => unreachable!("eval_logic only handles AND/OR"),
            };
            Ok(out.map_or(Value::Null, Value::Bool))
        }
    }
}

fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            match (l, r) {
                (Value::Int(a), Value::Int(b)) => Ok(match op {
                    BinOp::Add => Value::Int(a + b),
                    BinOp::Sub => Value::Int(a - b),
                    BinOp::Mul => Value::Int(a * b),
                    BinOp::Div => {
                        if *b == 0 {
                            return Err(Error::Eval("division by zero".into()));
                        }
                        Value::Int(a / b)
                    }
                    _ => unreachable!(),
                }),
                _ => {
                    let a = as_num(l)?;
                    let b = as_num(r)?;
                    Ok(Value::Double(match op {
                        BinOp::Add => a + b,
                        BinOp::Sub => a - b,
                        BinOp::Mul => a * b,
                        BinOp::Div => a / b,
                        _ => unreachable!(),
                    }))
                }
            }
        }
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            Ok(match l.sql_cmp(r) {
                None => Value::Null,
                Some(ord) => Value::Bool(match op {
                    BinOp::Eq => ord == Ordering::Equal,
                    BinOp::Ne => ord != Ordering::Equal,
                    BinOp::Lt => ord == Ordering::Less,
                    BinOp::Le => ord != Ordering::Greater,
                    BinOp::Gt => ord == Ordering::Greater,
                    BinOp::Ge => ord != Ordering::Less,
                    _ => unreachable!(),
                }),
            })
        }
        BinOp::And | BinOp::Or => unreachable!("handled by eval_logic"),
    }
}

fn as_num(v: &Value) -> Result<f64> {
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::Double(d) => Ok(*d),
        other => Err(Error::Eval(format!("expected number, got {other:?}"))),
    }
}

/// Name used for XML *fragment* nodes: a fragment is an element with an
/// empty tag name whose children are the sequence items. Element
/// constructors splice fragments instead of nesting them.
pub fn xml_fragment(children: Vec<XmlNodeRef>) -> XmlNodeRef {
    element("", vec![], children)
}

/// `true` if the node is a splice-on-embed fragment.
pub fn is_fragment(node: &XmlNode) -> bool {
    matches!(node, XmlNode::Element { name, .. } if name.is_empty())
}

/// Convert a value to child nodes for element construction.
fn value_to_children(v: &Value, out: &mut Vec<XmlNodeRef>) {
    match v {
        Value::Null => {}
        Value::Xml(x) if is_fragment(x) => out.extend(x.children().iter().cloned()),
        Value::Xml(x) => out.push(Arc::clone(x)),
        other => out.push(text(other.to_string())),
    }
}

fn eval_func(f: &ScalarFunc, args: Vec<Value>) -> Result<Value> {
    match f {
        ScalarFunc::XmlElement { name, attrs } => {
            if args.len() < attrs.len() {
                return Err(Error::Eval(format!(
                    "XmlElement `{name}` expects at least {} args",
                    attrs.len()
                )));
            }
            let attr_vals: Vec<(String, String)> = attrs
                .iter()
                .zip(&args)
                .map(|(k, v)| (k.clone(), v.to_string()))
                .collect();
            let mut children = Vec::new();
            for v in &args[attrs.len()..] {
                value_to_children(v, &mut children);
            }
            Ok(Value::Xml(element(name.clone(), attr_vals, children)))
        }
        ScalarFunc::XmlWrap(name) => {
            let mut children = Vec::new();
            for v in &args {
                value_to_children(v, &mut children);
            }
            Ok(Value::Xml(element(name.clone(), vec![], children)))
        }
        ScalarFunc::XmlAttr(name) => match args.first() {
            Some(Value::Xml(x)) => Ok(x.attr(name).map_or(Value::Null, Value::str)),
            Some(Value::Null) | None => Ok(Value::Null),
            Some(other) => Err(Error::Eval(format!("@{name} on non-XML {other:?}"))),
        },
        ScalarFunc::XmlChildren(name) => match args.first() {
            Some(Value::Xml(x)) => {
                let base: Vec<XmlNodeRef> = if is_fragment(x) {
                    // child axis over a sequence: children of each item
                    x.children()
                        .iter()
                        .flat_map(|c| c.children_named(name).cloned().collect::<Vec<_>>())
                        .collect()
                } else {
                    x.children_named(name).cloned().collect()
                };
                Ok(Value::Xml(xml_fragment(base)))
            }
            Some(Value::Null) | None => Ok(Value::Null),
            Some(other) => Err(Error::Eval(format!("child::{name} on non-XML {other:?}"))),
        },
        ScalarFunc::XmlDescendants(name) => match args.first() {
            Some(Value::Xml(x)) => Ok(Value::Xml(xml_fragment(
                x.descendants_named(name).into_iter().cloned().collect(),
            ))),
            Some(Value::Null) | None => Ok(Value::Null),
            Some(other) => Err(Error::Eval(format!(
                "descendant::{name} on non-XML {other:?}"
            ))),
        },
        ScalarFunc::NodeCount => match args.first() {
            Some(Value::Xml(x)) if is_fragment(x) => Ok(Value::Int(x.children().len() as i64)),
            Some(Value::Xml(_)) => Ok(Value::Int(1)),
            Some(Value::Null) | None => Ok(Value::Int(0)),
            Some(_) => Ok(Value::Int(1)),
        },
        ScalarFunc::XmlString => match args.first() {
            Some(Value::Xml(x)) => Ok(Value::str(x.text_content())),
            Some(Value::Null) | None => Ok(Value::Null),
            Some(other) => Ok(Value::str(other.to_string())),
        },
        ScalarFunc::Concat => {
            let mut s = String::new();
            for v in &args {
                s.push_str(&v.to_string());
            }
            Ok(Value::str(s))
        }
        ScalarFunc::Coalesce => Ok(args
            .into_iter()
            .find(|v| !v.is_null())
            .unwrap_or(Value::Null)),
    }
}

/// Aggregate functions for `HashAggregate`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)`.
    CountStar,
    /// `COUNT(expr)` — non-NULL count.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `aggXMLFrag(expr)` — collect XML values into a fragment, ordered by
    /// the group's sort columns (the executor feeds rows in input order).
    XmlAgg,
}

/// One aggregate column: function plus argument expression (`None` only for
/// `CountStar`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggExpr {
    /// Aggregate function.
    pub func: AggFunc,
    /// Argument, evaluated per input row.
    pub arg: Option<Expr>,
}

impl AggExpr {
    /// `COUNT(*)`.
    pub fn count_star() -> Self {
        AggExpr {
            func: AggFunc::CountStar,
            arg: None,
        }
    }

    /// Aggregate over an expression.
    pub fn over(func: AggFunc, arg: Expr) -> Self {
        AggExpr {
            func,
            arg: Some(arg),
        }
    }
}

/// Running accumulator for one aggregate within one group.
#[derive(Debug)]
#[allow(missing_docs)] // internal accumulator states mirror AggFunc variants
pub enum AggState {
    Count(i64),
    Sum {
        acc: f64,
        int_only: bool,
        seen: bool,
    },
    MinMax {
        best: Option<Value>,
        is_min: bool,
    },
    XmlAgg(Vec<XmlNodeRef>),
}

impl AggState {
    /// Fresh accumulator for an aggregate function.
    pub fn new(func: &AggFunc) -> AggState {
        match func {
            AggFunc::CountStar | AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                acc: 0.0,
                int_only: true,
                seen: false,
            },
            AggFunc::Min => AggState::MinMax {
                best: None,
                is_min: true,
            },
            AggFunc::Max => AggState::MinMax {
                best: None,
                is_min: false,
            },
            AggFunc::XmlAgg => AggState::XmlAgg(Vec::new()),
        }
    }

    /// Fold one input value (already evaluated; `None` for `COUNT(*)`).
    pub fn update(&mut self, value: Option<&Value>) -> Result<()> {
        match self {
            AggState::Count(n) => match value {
                None => *n += 1,                    // COUNT(*)
                Some(v) if !v.is_null() => *n += 1, // COUNT(expr)
                Some(_) => {}
            },
            AggState::Sum {
                acc,
                int_only,
                seen,
            } => {
                if let Some(v) = value {
                    match v {
                        Value::Null => {}
                        Value::Int(i) => {
                            *acc += *i as f64;
                            *seen = true;
                        }
                        Value::Double(d) => {
                            *acc += d;
                            *int_only = false;
                            *seen = true;
                        }
                        other => return Err(Error::Eval(format!("SUM of non-number {other:?}"))),
                    }
                }
            }
            AggState::MinMax { best, is_min } => {
                if let Some(v) = value {
                    if v.is_null() {
                        return Ok(());
                    }
                    let replace = match best {
                        None => true,
                        Some(b) => {
                            let ord = v.cmp(b);
                            if *is_min {
                                ord == Ordering::Less
                            } else {
                                ord == Ordering::Greater
                            }
                        }
                    };
                    if replace {
                        *best = Some(v.clone());
                    }
                }
            }
            AggState::XmlAgg(items) => {
                if let Some(v) = value {
                    match v {
                        Value::Null => {}
                        Value::Xml(x) if is_fragment(x) => {
                            items.extend(x.children().iter().cloned())
                        }
                        Value::Xml(x) => items.push(Arc::clone(x)),
                        other => items.push(text(other.to_string())),
                    }
                }
            }
        }
        Ok(())
    }

    /// Final value of the accumulator.
    pub fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::Sum {
                acc,
                int_only,
                seen,
            } => {
                if !seen {
                    Value::Null
                } else if int_only {
                    Value::Int(acc as i64)
                } else {
                    Value::Double(acc)
                }
            }
            AggState::MinMax { best, .. } => best.unwrap_or(Value::Null),
            AggState::XmlAgg(items) => Value::Xml(xml_fragment(items)),
        }
    }
}

/// Evaluate a full row of expressions.
pub fn eval_all(exprs: &[Expr], row: &[Value]) -> Result<Row> {
    let mut out = Vec::with_capacity(exprs.len());
    for e in exprs {
        out.push(e.eval(row)?);
    }
    Ok(out.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(vals: Vec<Value>) -> Vec<Value> {
        vals
    }

    #[test]
    fn arithmetic_int_preserving() {
        let e = Expr::bin(BinOp::Add, Expr::col(0), Expr::lit(2i64));
        assert_eq!(e.eval(&r(vec![Value::Int(3)])).unwrap(), Value::Int(5));
        let e = Expr::bin(BinOp::Mul, Expr::col(0), Expr::lit(2.0));
        assert_eq!(e.eval(&r(vec![Value::Int(3)])).unwrap(), Value::Double(6.0));
    }

    #[test]
    fn division_by_zero_errors() {
        let e = Expr::bin(BinOp::Div, Expr::lit(1i64), Expr::lit(0i64));
        assert!(e.eval(&[]).is_err());
    }

    #[test]
    fn three_valued_logic() {
        let null = Expr::lit(Value::Null);
        let t = Expr::lit(true);
        let f = Expr::lit(false);
        assert_eq!(
            Expr::bin(BinOp::And, f.clone(), null.clone())
                .eval(&[])
                .unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Expr::bin(BinOp::Or, t.clone(), null.clone())
                .eval(&[])
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::bin(BinOp::And, t, null.clone()).eval(&[]).unwrap(),
            Value::Null
        );
        assert_eq!(
            Expr::bin(BinOp::Or, f, null).eval(&[]).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn comparison_with_null_is_null() {
        let e = Expr::eq(Expr::lit(Value::Null), Expr::lit(1i64));
        assert_eq!(e.eval(&[]).unwrap(), Value::Null);
        assert!(!e.eval(&[]).unwrap().is_true());
    }

    #[test]
    fn xml_element_constructor_with_attrs_and_splice() {
        let frag = xml_fragment(vec![element("vendor", vec![], vec![])]);
        let e = Expr::Func(
            ScalarFunc::XmlElement {
                name: "product".into(),
                attrs: vec!["name".into()],
            },
            vec![Expr::lit("CRT 15"), Expr::lit(Value::Xml(frag))],
        );
        let v = e.eval(&[]).unwrap();
        let Value::Xml(x) = v else {
            panic!("expected XML")
        };
        assert_eq!(x.to_xml(), "<product name=\"CRT 15\"><vendor/></product>");
    }

    #[test]
    fn xml_wrap_and_attr_and_children() {
        let e = Expr::Func(ScalarFunc::XmlWrap("pid".into()), vec![Expr::lit("P1")]);
        let v = e.eval(&[]).unwrap();
        assert_eq!(v.to_string(), "<pid>P1</pid>");

        let prod = element(
            "product",
            vec![("name".into(), "CRT 15".into())],
            vec![
                element("vendor", vec![], vec![]),
                element("vendor", vec![], vec![]),
            ],
        );
        let attr = Expr::Func(ScalarFunc::XmlAttr("name".into()), vec![Expr::col(0)]);
        assert_eq!(
            attr.eval(&[Value::Xml(prod.clone())]).unwrap(),
            Value::str("CRT 15")
        );
        let kids = Expr::Func(ScalarFunc::XmlChildren("vendor".into()), vec![Expr::col(0)]);
        let count = Expr::Func(ScalarFunc::NodeCount, vec![kids]);
        assert_eq!(count.eval(&[Value::Xml(prod)]).unwrap(), Value::Int(2));
    }

    #[test]
    fn agg_count_sum_min_max() {
        let vals = [Value::Int(3), Value::Null, Value::Int(5)];
        let mut count = AggState::new(&AggFunc::Count);
        let mut star = AggState::new(&AggFunc::CountStar);
        let mut sum = AggState::new(&AggFunc::Sum);
        let mut min = AggState::new(&AggFunc::Min);
        let mut max = AggState::new(&AggFunc::Max);
        for v in &vals {
            count.update(Some(v)).unwrap();
            star.update(None).unwrap();
            sum.update(Some(v)).unwrap();
            min.update(Some(v)).unwrap();
            max.update(Some(v)).unwrap();
        }
        assert_eq!(count.finish(), Value::Int(2));
        assert_eq!(star.finish(), Value::Int(3));
        assert_eq!(sum.finish(), Value::Int(8));
        assert_eq!(min.finish(), Value::Int(3));
        assert_eq!(max.finish(), Value::Int(5));
    }

    #[test]
    fn agg_empty_group_values() {
        assert_eq!(AggState::new(&AggFunc::Count).finish(), Value::Int(0));
        assert_eq!(AggState::new(&AggFunc::Sum).finish(), Value::Null);
        assert_eq!(AggState::new(&AggFunc::Min).finish(), Value::Null);
    }

    #[test]
    fn xml_agg_collects_in_order_and_splices() {
        let mut agg = AggState::new(&AggFunc::XmlAgg);
        agg.update(Some(&Value::Xml(element("a", vec![], vec![]))))
            .unwrap();
        agg.update(Some(&Value::Xml(xml_fragment(vec![element(
            "b",
            vec![],
            vec![],
        )]))))
        .unwrap();
        agg.update(Some(&Value::Null)).unwrap();
        let Value::Xml(frag) = agg.finish() else {
            panic!()
        };
        assert!(is_fragment(&frag));
        assert_eq!(frag.children().len(), 2);
        assert_eq!(frag.children()[0].name(), Some("a"));
        assert_eq!(frag.children()[1].name(), Some("b"));
    }

    #[test]
    fn remap_columns_rewrites_references() {
        let e = Expr::bin(BinOp::Add, Expr::col(0), Expr::col(2));
        let shifted = e.remap_columns(&|i| i + 5);
        let mut cols = Vec::new();
        shifted.columns(&mut cols);
        assert_eq!(cols, vec![5, 7]);
    }
}
