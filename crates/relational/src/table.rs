//! Row storage: primary-key-ordered rows plus optional single-column
//! secondary indices.
//!
//! The paper's experiments (§6.1) "defined primary keys for all the
//! relational tables and built appropriate indices on the key columns and
//! other join columns"; the flat curves of Figs. 17 and 23 depend on every
//! base-table access in a generated trigger being an index probe, never a
//! scan. Rows live in a hash map keyed by primary key (probes stay O(1)
//! however large the table grows) alongside an ordered key set, so
//! primary-key order — the canonical order of every scan, view
//! materialization and `SELECT` — falls out of iteration for free instead
//! of being re-sorted on every access. Secondary indices are hash indices
//! whose buckets keep their keys ordered, so index probes also yield rows
//! in primary-key order without sorting; the generated plans only ever
//! probe them with equality keys.
//!
//! Every mutation bumps a per-table **version**; executor-level caches
//! (join build sides, stable subplan results) key on it so a cached
//! structure is reused exactly until the data it was built from changes.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use crate::schema::TableSchema;
use crate::value::{Row, Value};
use crate::{Error, Result};

/// Primary-key value tuple.
pub type Key = Box<[Value]>;

/// A stored table.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Arc<TableSchema>,
    rows: HashMap<Key, Row>,
    /// Primary keys in order; kept in lockstep with `rows` so ordered
    /// iteration never sorts and keyed probes never walk a tree.
    order: BTreeSet<Key>,
    /// column index -> (value -> ordered set of pks)
    secondary: HashMap<usize, HashMap<Value, BTreeSet<Key>>>,
    /// Bumped on every mutation (insert/delete/update/index creation).
    version: u64,
}

impl Table {
    /// Create an empty table.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema: Arc::new(schema),
            rows: HashMap::new(),
            order: BTreeSet::new(),
            secondary: HashMap::new(),
            version: 0,
        }
    }

    /// The table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Shared handle to the schema.
    pub fn schema_ref(&self) -> Arc<TableSchema> {
        Arc::clone(&self.schema)
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Monotonic per-table mutation counter. Any cache derived from this
    /// table's contents is valid exactly while the version stands still.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Add a hash index on one column (no-op if already present).
    pub fn create_index(&mut self, column: usize) {
        if self.secondary.contains_key(&column) {
            return;
        }
        let mut index: HashMap<Value, BTreeSet<Key>> = HashMap::new();
        for (key, row) in &self.rows {
            index
                .entry(row[column].clone())
                .or_default()
                .insert(key.clone());
        }
        self.secondary.insert(column, index);
        self.version += 1;
    }

    /// `true` if a secondary index exists on `column`.
    pub fn has_index(&self, column: usize) -> bool {
        self.secondary.contains_key(&column)
    }

    /// Column indices carrying a secondary index, in ascending order
    /// (persisted by the storage catalog so indices survive a restart).
    pub fn indexed_columns(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.secondary.keys().copied().collect();
        cols.sort_unstable();
        cols
    }

    /// Fetch a row by primary key.
    pub fn get(&self, key: &[Value]) -> Option<&Row> {
        self.rows.get(key)
    }

    /// Iterate over all rows in primary-key order.
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        self.order
            .iter()
            .map(|k| self.rows.get(k).expect("order tracks rows"))
    }

    /// Iterate over `(primary key, row)` pairs in primary-key order. The
    /// stored key is handed out directly so scans never re-extract (and
    /// re-clone) key values from rows.
    pub fn entries(&self) -> impl Iterator<Item = (&Key, &Row)> {
        self.order
            .iter()
            .map(|k| (k, self.rows.get(k).expect("order tracks rows")))
    }

    /// Rows whose `column` equals `value`, via the secondary index, in
    /// primary-key order.
    pub fn index_lookup(&self, column: usize, value: &Value) -> Result<Vec<&Row>> {
        let index = self
            .secondary
            .get(&column)
            .ok_or_else(|| Error::Plan(format!("no index on {}.{}", self.schema.name, column)))?;
        Ok(index
            .get(value)
            .map(|keys| keys.iter().filter_map(|k| self.rows.get(k)).collect())
            .unwrap_or_default())
    }

    /// Insert a row; fails on duplicate primary key.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<Row> {
        self.schema.check_row(&values)?;
        let key = self.schema.key_of(&values);
        if self.rows.contains_key(&key) {
            return Err(Error::DuplicateKey {
                table: self.schema.name.clone(),
                key: format!("{key:?}"),
            });
        }
        let row: Row = values.into();
        for (&col, index) in &mut self.secondary {
            index
                .entry(row[col].clone())
                .or_default()
                .insert(key.clone());
        }
        self.order.insert(key.clone());
        self.rows.insert(key, Arc::clone(&row));
        self.version += 1;
        Ok(row)
    }

    /// Delete by primary key, returning the removed row.
    pub fn delete(&mut self, key: &[Value]) -> Option<Row> {
        let row = self.rows.remove(key)?;
        self.order.remove(key);
        for (&col, index) in &mut self.secondary {
            if let Some(bucket) = index.get_mut(&row[col]) {
                bucket.remove(key);
                if bucket.is_empty() {
                    index.remove(&row[col]);
                }
            }
        }
        self.version += 1;
        Some(row)
    }

    /// Replace the row at `key` with `values` (the new row may move to a
    /// different primary key). Returns `(old, new)`.
    pub fn update(&mut self, key: &[Value], values: Vec<Value>) -> Result<(Row, Row)> {
        self.schema.check_row(&values)?;
        let new_key = self.schema.key_of(&values);
        if new_key.as_ref() != key && self.rows.contains_key(&new_key) {
            return Err(Error::DuplicateKey {
                table: self.schema.name.clone(),
                key: format!("{new_key:?}"),
            });
        }
        let old = self
            .delete(key)
            .ok_or_else(|| Error::Plan(format!("update of missing key {key:?}")))?;
        let new = self.insert(values)?;
        Ok((old, new))
    }

    /// Primary keys of all rows (used by statement planning in tests).
    pub fn keys(&self) -> impl Iterator<Item = &Key> {
        self.order.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::ColumnType;

    fn vendor_table() -> Table {
        let schema = TableSchema::new(
            "vendor",
            vec![
                ColumnDef::new("vid", ColumnType::Str),
                ColumnDef::new("pid", ColumnType::Str),
                ColumnDef::new("price", ColumnType::Double),
            ],
            &["vid", "pid"],
        )
        .unwrap();
        Table::new(schema)
    }

    fn v(vid: &str, pid: &str, price: f64) -> Vec<Value> {
        vec![Value::str(vid), Value::str(pid), Value::Double(price)]
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut t = vendor_table();
        t.insert(v("Amazon", "P1", 100.0)).unwrap();
        let key: Key = Box::new([Value::str("Amazon"), Value::str("P1")]);
        assert_eq!(t.get(&key).unwrap()[2], Value::Double(100.0));
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = vendor_table();
        t.insert(v("Amazon", "P1", 100.0)).unwrap();
        assert!(matches!(
            t.insert(v("Amazon", "P1", 50.0)),
            Err(Error::DuplicateKey { .. })
        ));
    }

    #[test]
    fn secondary_index_tracks_inserts_updates_deletes() {
        let mut t = vendor_table();
        t.create_index(1); // pid
        t.insert(v("Amazon", "P1", 100.0)).unwrap();
        t.insert(v("Bestbuy", "P1", 120.0)).unwrap();
        t.insert(v("Buy.com", "P2", 200.0)).unwrap();
        assert_eq!(t.index_lookup(1, &Value::str("P1")).unwrap().len(), 2);

        // Update moves a row from P1 to P2.
        let key: Key = Box::new([Value::str("Amazon"), Value::str("P1")]);
        t.update(&key, v("Amazon", "P2", 100.0)).unwrap();
        assert_eq!(t.index_lookup(1, &Value::str("P1")).unwrap().len(), 1);
        assert_eq!(t.index_lookup(1, &Value::str("P2")).unwrap().len(), 2);

        // Delete drops index entries.
        let key2: Key = Box::new([Value::str("Bestbuy"), Value::str("P1")]);
        t.delete(&key2).unwrap();
        assert!(t.index_lookup(1, &Value::str("P1")).unwrap().is_empty());
    }

    #[test]
    fn index_built_over_existing_rows() {
        let mut t = vendor_table();
        t.insert(v("Amazon", "P1", 100.0)).unwrap();
        t.insert(v("Bestbuy", "P1", 120.0)).unwrap();
        t.create_index(1);
        assert_eq!(t.index_lookup(1, &Value::str("P1")).unwrap().len(), 2);
    }

    #[test]
    fn lookup_without_index_errors() {
        let t = vendor_table();
        assert!(matches!(
            t.index_lookup(2, &Value::Double(1.0)),
            Err(Error::Plan(_))
        ));
    }

    #[test]
    fn iteration_and_index_lookup_are_pk_ordered() {
        let mut t = vendor_table();
        t.create_index(1);
        t.insert(v("Circuitcity", "P1", 3.0)).unwrap();
        t.insert(v("Amazon", "P1", 1.0)).unwrap();
        t.insert(v("Bestbuy", "P1", 2.0)).unwrap();
        let vids: Vec<&Value> = t.iter().map(|r| &r[0]).collect();
        assert_eq!(
            vids,
            vec![
                &Value::str("Amazon"),
                &Value::str("Bestbuy"),
                &Value::str("Circuitcity")
            ]
        );
        let hits = t.index_lookup(1, &Value::str("P1")).unwrap();
        let vids: Vec<&Value> = hits.iter().map(|r| &r[0]).collect();
        assert_eq!(
            vids,
            vec![
                &Value::str("Amazon"),
                &Value::str("Bestbuy"),
                &Value::str("Circuitcity")
            ]
        );
    }

    #[test]
    fn version_bumps_on_every_mutation() {
        let mut t = vendor_table();
        let v0 = t.version();
        t.insert(v("Amazon", "P1", 1.0)).unwrap();
        let v1 = t.version();
        assert!(v1 > v0);
        let key: Key = Box::new([Value::str("Amazon"), Value::str("P1")]);
        t.update(&key, v("Amazon", "P1", 2.0)).unwrap();
        let v2 = t.version();
        assert!(v2 > v1);
        t.delete(&key).unwrap();
        assert!(t.version() > v2);
        t.create_index(1);
        assert!(t.version() > v2 + 1);
    }

    #[test]
    fn update_to_conflicting_key_rejected() {
        let mut t = vendor_table();
        t.insert(v("Amazon", "P1", 100.0)).unwrap();
        t.insert(v("Bestbuy", "P1", 120.0)).unwrap();
        let key: Key = Box::new([Value::str("Amazon"), Value::str("P1")]);
        let err = t.update(&key, v("Bestbuy", "P1", 99.0));
        assert!(matches!(err, Err(Error::DuplicateKey { .. })));
        // Original row untouched.
        assert!(t.get(&key).is_some());
    }
}
