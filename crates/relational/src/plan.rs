//! Physical query plans.
//!
//! A generated "SQL trigger" body in this system is a [`PhysicalPlan`]
//! evaluated against the database plus the firing statement's transition
//! tables. Plans are DAGs: the affected-key subplan is shared between the
//! OLD and NEW branches exactly like the `WITH AffectedKeys (…)` common
//! table expression in the paper's Figure 16, and the executor memoizes
//! shared nodes so they run once.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::Arc;

use crate::expr::{AggExpr, Expr};
use crate::value::Row;
use crate::{Database, Error, Result};

/// Shared plan handle; sharing a node means its result is computed once per
/// execution.
pub type PlanRef = Arc<PhysicalPlan>;

/// Which transition table a [`PhysicalPlan::TransitionScan`] reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransitionSide {
    /// Δtable — rows *after* the update (a.k.a. `INSERTED` / `NEW_TABLE`).
    Delta,
    /// ∇table — rows *before* the update (a.k.a. `DELETED` / `OLD_TABLE`).
    Nabla,
}

/// Whether a table access sees the current (post-statement) state or the
/// reconstructed pre-statement state `B_old = (B ∖ ΔB) ∪ ∇B` (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableEpoch {
    /// Post-statement state.
    Current,
    /// Pre-statement state, reconstructed from transition tables.
    Old,
}

/// Join variants. `RightAnti` is expressed by swapping inputs of `LeftAnti`
/// at plan-construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// Emit matched (left ++ right) rows.
    Inner,
    /// Emit every left row; unmatched rows padded with NULLs.
    LeftOuter,
    /// Emit left rows with at least one match (left columns only).
    LeftSemi,
    /// Emit left rows with no match (left columns only).
    LeftAnti,
}

impl JoinKind {
    /// Does the join output include right-side columns?
    pub fn keeps_right(self) -> bool {
        matches!(self, JoinKind::Inner | JoinKind::LeftOuter)
    }
}

/// One sort key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SortKey {
    /// Expression over the input row.
    pub expr: Expr,
    /// Descending order if `true`.
    pub desc: bool,
}

impl SortKey {
    /// Ascending sort on a column.
    pub fn asc(col: usize) -> Self {
        SortKey {
            expr: Expr::col(col),
            desc: false,
        }
    }
}

/// A physical operator. All operators are fully materializing (the engine
/// targets correctness and index-driven asymptotics, not pipelining).
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Scan a stored table (current or reconstructed-old epoch).
    TableScan {
        /// Table name.
        table: String,
        /// Which state of the table to read.
        epoch: TableEpoch,
    },
    /// Scan the firing statement's Δ or ∇ transition table. With `pruned`,
    /// rows present in *both* Δ and ∇ (no-op updates) are removed first —
    /// the pruned transition tables of Appendix F (Definition 8).
    TransitionScan {
        /// Table the statement targeted (must match the firing context).
        table: String,
        /// Δ or ∇.
        side: TransitionSide,
        /// Apply Appendix-F pruning.
        pruned: bool,
    },
    /// Literal rows (constants tables in tests; empty relations).
    Values {
        /// Column count (needed when `rows` is empty).
        arity: usize,
        /// The rows.
        rows: Vec<Row>,
    },
    /// σ — keep rows where `predicate` is true.
    Filter {
        /// Input plan.
        input: PlanRef,
        /// Boolean predicate.
        predicate: Expr,
    },
    /// π — compute one output column per expression.
    Project {
        /// Input plan.
        input: PlanRef,
        /// Output column expressions.
        exprs: Vec<Expr>,
    },
    /// Hash join on equi-key expressions, with an optional residual filter
    /// applied to the concatenated row.
    HashJoin {
        /// Build/probe sides.
        left: PlanRef,
        /// Right input.
        right: PlanRef,
        /// Key expressions over the left row.
        left_keys: Vec<Expr>,
        /// Key expressions over the right row (same length).
        right_keys: Vec<Expr>,
        /// Join variant.
        kind: JoinKind,
        /// Residual predicate over (left ++ right).
        filter: Option<Expr>,
    },
    /// Index nested-loop join: for each outer row, probe `table` by
    /// equality on `probe` columns (primary key or a secondary index).
    /// This is what keeps generated triggers O(affected) instead of
    /// O(database) — see Fig. 23.
    IndexJoin {
        /// Outer (driving) input — typically transition-derived, small.
        outer: PlanRef,
        /// Inner stored table.
        table: String,
        /// Probe the current or old epoch of the inner table.
        epoch: TableEpoch,
        /// `(inner column, outer expression)` equality pairs. Either the
        /// full primary key or a single secondary-indexed column.
        probe: Vec<(usize, Expr)>,
        /// Join variant (left = outer).
        kind: JoinKind,
        /// Residual predicate over (outer ++ inner).
        filter: Option<Expr>,
    },
    /// Cross/theta join evaluated by nested loops (used only where the
    /// paper's CreateAKGraph requires a genuine cross product, Fig. 8
    /// lines 36-39).
    NestedLoopJoin {
        /// Left input.
        left: PlanRef,
        /// Right input.
        right: PlanRef,
        /// Optional theta predicate over (left ++ right).
        predicate: Option<Expr>,
        /// Join variant.
        kind: JoinKind,
    },
    /// γ — hash aggregation. Output columns: group expressions then
    /// aggregates. With no group expressions, emits exactly one row.
    HashAggregate {
        /// Input plan.
        input: PlanRef,
        /// Grouping expressions.
        group_exprs: Vec<Expr>,
        /// Aggregate columns.
        aggs: Vec<AggExpr>,
    },
    /// UNION ALL of same-arity inputs.
    UnionAll {
        /// Inputs.
        inputs: Vec<PlanRef>,
    },
    /// Duplicate elimination over whole rows.
    Distinct {
        /// Input plan.
        input: PlanRef,
    },
    /// Stable sort by the given keys.
    Sort {
        /// Input plan.
        input: PlanRef,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// XQGM's Unnest: evaluate `expr` per input row (an XML fragment,
    /// element or NULL) and emit `row ++ [item]` once per contained node.
    Unnest {
        /// Input plan.
        input: PlanRef,
        /// Expression yielding the sequence to unnest.
        expr: Expr,
    },
}

/// Rendering state for [`PhysicalPlan::explain`]: reference counts from the
/// pre-pass, plus labels assigned to shared nodes in render order.
struct ExplainState {
    refs: HashMap<usize, usize>,
    labels: HashMap<usize, usize>,
    next_label: usize,
}

impl PhysicalPlan {
    /// Wrap into a shared handle.
    pub fn into_ref(self) -> PlanRef {
        Arc::new(self)
    }

    /// Number of output columns, resolved against `db` for table scans.
    ///
    /// Plans are DAGs with heavy sharing (the affected-key subplan feeds
    /// both the OLD and NEW branches), so the recursion memoizes shared
    /// nodes by identity — a naive tree walk would revisit a shared node
    /// once per *path*, which is exponential in view depth.
    pub fn arity(&self, db: &Database) -> Result<usize> {
        self.arity_memo(db, &mut HashMap::new())
    }

    fn arity_memo(&self, db: &Database, memo: &mut HashMap<usize, usize>) -> Result<usize> {
        let child =
            |p: &PlanRef, db: &Database, memo: &mut HashMap<usize, usize>| -> Result<usize> {
                let key = Arc::as_ptr(p) as usize;
                if let Some(&hit) = memo.get(&key) {
                    return Ok(hit);
                }
                let a = p.arity_memo(db, memo)?;
                memo.insert(key, a);
                Ok(a)
            };
        Ok(match self {
            PhysicalPlan::TableScan { table, .. } | PhysicalPlan::TransitionScan { table, .. } => {
                db.table(table)?.schema().arity()
            }
            PhysicalPlan::Values { arity, .. } => *arity,
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Sort { input, .. } => child(input, db, memo)?,
            PhysicalPlan::Project { exprs, .. } => exprs.len(),
            PhysicalPlan::HashJoin {
                left, right, kind, ..
            } => {
                if kind.keeps_right() {
                    child(left, db, memo)? + child(right, db, memo)?
                } else {
                    child(left, db, memo)?
                }
            }
            PhysicalPlan::IndexJoin {
                outer, table, kind, ..
            } => {
                if kind.keeps_right() {
                    child(outer, db, memo)? + db.table(table)?.schema().arity()
                } else {
                    child(outer, db, memo)?
                }
            }
            PhysicalPlan::NestedLoopJoin {
                left, right, kind, ..
            } => {
                if kind.keeps_right() {
                    child(left, db, memo)? + child(right, db, memo)?
                } else {
                    child(left, db, memo)?
                }
            }
            PhysicalPlan::HashAggregate {
                group_exprs, aggs, ..
            } => group_exprs.len() + aggs.len(),
            PhysicalPlan::UnionAll { inputs } => {
                let first = inputs
                    .first()
                    .ok_or_else(|| Error::Plan("UnionAll with no inputs".into()))?;
                child(first, db, memo)?
            }
            PhysicalPlan::Unnest { input, .. } => child(input, db, memo)? + 1,
        })
    }

    /// The stored tables this plan's result is a pure function of, or
    /// `None` when the result also depends on the firing statement (a
    /// transition-table scan or a reconstructed `Old`-epoch access).
    ///
    /// This is the cacheability analysis behind the executor's
    /// cross-firing caches: a subplan with `Some(tables)` produces
    /// identical rows for as long as every named table's
    /// [`version`](crate::Table::version) stands still, so join build
    /// sides over such subplans can be reused across firings instead of
    /// being re-hashed each time.
    pub fn stable_tables(&self) -> Option<BTreeSet<String>> {
        self.stable_memo(&mut HashMap::new())
    }

    fn stable_memo(
        &self,
        memo: &mut HashMap<usize, Option<BTreeSet<String>>>,
    ) -> Option<BTreeSet<String>> {
        let mut out = BTreeSet::new();
        match self {
            PhysicalPlan::TransitionScan { .. } => return None,
            PhysicalPlan::TableScan { table, epoch } => {
                if *epoch == TableEpoch::Old {
                    return None;
                }
                out.insert(table.clone());
            }
            PhysicalPlan::IndexJoin { table, epoch, .. } => {
                if *epoch == TableEpoch::Old {
                    return None;
                }
                out.insert(table.clone());
            }
            _ => {}
        }
        for c in self.children() {
            let key = Arc::as_ptr(c) as usize;
            let child = match memo.get(&key) {
                Some(hit) => hit.clone(),
                None => {
                    let computed = c.stable_memo(memo);
                    memo.insert(key, computed.clone());
                    computed
                }
            };
            out.extend(child?);
        }
        Some(out)
    }

    /// Every stored table this plan can read, regardless of epoch: current
    /// scans and index probes, reconstructed `Old`-epoch accesses, and the
    /// base tables named by transition scans all count.
    ///
    /// Where [`PhysicalPlan::stable_tables`] answers "what must stand still
    /// for a cached result to stay valid" (and bails on statement-dependent
    /// inputs), this is the *footprint* analysis behind write scheduling: a
    /// writer whose trigger plans only touch these tables can run under
    /// per-table latches instead of the global write lock, in parallel with
    /// writers whose footprints are disjoint.
    pub fn table_footprint(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.footprint_memo(&mut HashSet::new(), &mut out);
        out
    }

    fn footprint_memo(&self, seen: &mut HashSet<usize>, out: &mut BTreeSet<String>) {
        match self {
            PhysicalPlan::TableScan { table, .. }
            | PhysicalPlan::TransitionScan { table, .. }
            | PhysicalPlan::IndexJoin { table, .. } => {
                out.insert(table.clone());
            }
            _ => {}
        }
        for c in self.children() {
            let key = Arc::as_ptr(c) as usize;
            if seen.insert(key) {
                c.footprint_memo(seen, out);
            }
        }
    }

    /// Multi-line EXPLAIN-style rendering. Subplans referenced from more
    /// than one parent are rendered once and tagged `[shared N]`; later
    /// references print a one-line back-pointer. Without this, rendering a
    /// deeply shared DAG expands every path — hundreds of megabytes for a
    /// depth-5 view's trigger plan.
    pub fn explain(&self) -> String {
        let mut refs: HashMap<usize, usize> = HashMap::new();
        self.count_refs(&mut refs);
        let mut out = String::new();
        let mut st = ExplainState {
            refs,
            labels: HashMap::new(),
            next_label: 1,
        };
        self.explain_into(&mut out, 0, &mut st);
        out
    }

    /// Count how many parents reference each node (by identity).
    fn count_refs(&self, refs: &mut HashMap<usize, usize>) {
        for c in self.children() {
            let key = Arc::as_ptr(c) as usize;
            let n = refs.entry(key).or_insert(0);
            *n += 1;
            if *n == 1 {
                c.count_refs(refs);
            }
        }
    }

    /// Input plans of this node, in rendering order.
    fn children(&self) -> Vec<&PlanRef> {
        match self {
            PhysicalPlan::TableScan { .. }
            | PhysicalPlan::TransitionScan { .. }
            | PhysicalPlan::Values { .. } => vec![],
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Unnest { input, .. } => vec![input],
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::NestedLoopJoin { left, right, .. } => vec![left, right],
            PhysicalPlan::IndexJoin { outer, .. } => vec![outer],
            PhysicalPlan::UnionAll { inputs } => inputs.iter().collect(),
        }
    }

    /// Render one child reference: shared nodes get a `[shared N]` label on
    /// first visit and a one-line back-pointer afterwards.
    fn explain_ref(p: &PlanRef, out: &mut String, depth: usize, st: &mut ExplainState) {
        let key = Arc::as_ptr(p) as usize;
        if st.refs.get(&key).copied().unwrap_or(0) < 2 {
            return p.explain_into(out, depth, st);
        }
        let pad = "  ".repeat(depth);
        match st.labels.get(&key) {
            Some(&n) => {
                let _ = writeln!(out, "{pad}[shared {n}] (see above)");
            }
            None => {
                let n = st.next_label;
                st.next_label += 1;
                st.labels.insert(key, n);
                let _ = writeln!(out, "{pad}[shared {n}]");
                p.explain_into(out, depth, st);
            }
        }
    }

    fn explain_into(&self, out: &mut String, depth: usize, st: &mut ExplainState) {
        let pad = "  ".repeat(depth);
        match self {
            PhysicalPlan::TableScan { table, epoch } => {
                let _ = writeln!(out, "{pad}TableScan {table} [{epoch:?}]");
            }
            PhysicalPlan::TransitionScan {
                table,
                side,
                pruned,
            } => {
                let sym = match side {
                    TransitionSide::Delta => "Δ",
                    TransitionSide::Nabla => "∇",
                };
                let p = if *pruned { " pruned" } else { "" };
                let _ = writeln!(out, "{pad}TransitionScan {sym}{table}{p}");
            }
            PhysicalPlan::Values { arity, rows } => {
                let _ = writeln!(out, "{pad}Values arity={arity} rows={}", rows.len());
            }
            PhysicalPlan::Filter { input, predicate } => {
                let _ = writeln!(out, "{pad}Filter {predicate:?}");
                Self::explain_ref(input, out, depth + 1, st);
            }
            PhysicalPlan::Project { input, exprs } => {
                let _ = writeln!(out, "{pad}Project [{}]", exprs.len());
                Self::explain_ref(input, out, depth + 1, st);
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                kind,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}HashJoin {kind:?} on {left_keys:?} = {right_keys:?}"
                );
                Self::explain_ref(left, out, depth + 1, st);
                Self::explain_ref(right, out, depth + 1, st);
            }
            PhysicalPlan::IndexJoin {
                outer,
                table,
                epoch,
                probe,
                kind,
                ..
            } => {
                let cols: Vec<usize> = probe.iter().map(|(c, _)| *c).collect();
                let _ = writeln!(
                    out,
                    "{pad}IndexJoin {kind:?} -> {table}[{epoch:?}] probe cols {cols:?}"
                );
                Self::explain_ref(outer, out, depth + 1, st);
            }
            PhysicalPlan::NestedLoopJoin {
                left, right, kind, ..
            } => {
                let _ = writeln!(out, "{pad}NestedLoopJoin {kind:?}");
                Self::explain_ref(left, out, depth + 1, st);
                Self::explain_ref(right, out, depth + 1, st);
            }
            PhysicalPlan::HashAggregate {
                input,
                group_exprs,
                aggs,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}HashAggregate groups={} aggs={}",
                    group_exprs.len(),
                    aggs.len()
                );
                Self::explain_ref(input, out, depth + 1, st);
            }
            PhysicalPlan::UnionAll { inputs } => {
                let _ = writeln!(out, "{pad}UnionAll [{}]", inputs.len());
                for i in inputs {
                    Self::explain_ref(i, out, depth + 1, st);
                }
            }
            PhysicalPlan::Distinct { input } => {
                let _ = writeln!(out, "{pad}Distinct");
                Self::explain_ref(input, out, depth + 1, st);
            }
            PhysicalPlan::Sort { input, keys } => {
                let _ = writeln!(out, "{pad}Sort [{} keys]", keys.len());
                Self::explain_ref(input, out, depth + 1, st);
            }
            PhysicalPlan::Unnest { input, expr } => {
                let _ = writeln!(out, "{pad}Unnest {expr:?}");
                Self::explain_ref(input, out, depth + 1, st);
            }
        }
    }
}
