//! Physical query plans.
//!
//! A generated "SQL trigger" body in this system is a [`PhysicalPlan`]
//! evaluated against the database plus the firing statement's transition
//! tables. Plans are DAGs: the affected-key subplan is shared between the
//! OLD and NEW branches exactly like the `WITH AffectedKeys (…)` common
//! table expression in the paper's Figure 16, and the executor memoizes
//! shared nodes so they run once.

use std::fmt::Write as _;
use std::sync::Arc;

use crate::expr::{AggExpr, Expr};
use crate::value::Row;
use crate::{Database, Error, Result};

/// Shared plan handle; sharing a node means its result is computed once per
/// execution.
pub type PlanRef = Arc<PhysicalPlan>;

/// Which transition table a [`PhysicalPlan::TransitionScan`] reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionSide {
    /// Δtable — rows *after* the update (a.k.a. `INSERTED` / `NEW_TABLE`).
    Delta,
    /// ∇table — rows *before* the update (a.k.a. `DELETED` / `OLD_TABLE`).
    Nabla,
}

/// Whether a table access sees the current (post-statement) state or the
/// reconstructed pre-statement state `B_old = (B ∖ ΔB) ∪ ∇B` (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableEpoch {
    /// Post-statement state.
    Current,
    /// Pre-statement state, reconstructed from transition tables.
    Old,
}

/// Join variants. `RightAnti` is expressed by swapping inputs of `LeftAnti`
/// at plan-construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Emit matched (left ++ right) rows.
    Inner,
    /// Emit every left row; unmatched rows padded with NULLs.
    LeftOuter,
    /// Emit left rows with at least one match (left columns only).
    LeftSemi,
    /// Emit left rows with no match (left columns only).
    LeftAnti,
}

impl JoinKind {
    /// Does the join output include right-side columns?
    pub fn keeps_right(self) -> bool {
        matches!(self, JoinKind::Inner | JoinKind::LeftOuter)
    }
}

/// One sort key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Expression over the input row.
    pub expr: Expr,
    /// Descending order if `true`.
    pub desc: bool,
}

impl SortKey {
    /// Ascending sort on a column.
    pub fn asc(col: usize) -> Self {
        SortKey {
            expr: Expr::col(col),
            desc: false,
        }
    }
}

/// A physical operator. All operators are fully materializing (the engine
/// targets correctness and index-driven asymptotics, not pipelining).
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Scan a stored table (current or reconstructed-old epoch).
    TableScan {
        /// Table name.
        table: String,
        /// Which state of the table to read.
        epoch: TableEpoch,
    },
    /// Scan the firing statement's Δ or ∇ transition table. With `pruned`,
    /// rows present in *both* Δ and ∇ (no-op updates) are removed first —
    /// the pruned transition tables of Appendix F (Definition 8).
    TransitionScan {
        /// Table the statement targeted (must match the firing context).
        table: String,
        /// Δ or ∇.
        side: TransitionSide,
        /// Apply Appendix-F pruning.
        pruned: bool,
    },
    /// Literal rows (constants tables in tests; empty relations).
    Values {
        /// Column count (needed when `rows` is empty).
        arity: usize,
        /// The rows.
        rows: Vec<Row>,
    },
    /// σ — keep rows where `predicate` is true.
    Filter {
        /// Input plan.
        input: PlanRef,
        /// Boolean predicate.
        predicate: Expr,
    },
    /// π — compute one output column per expression.
    Project {
        /// Input plan.
        input: PlanRef,
        /// Output column expressions.
        exprs: Vec<Expr>,
    },
    /// Hash join on equi-key expressions, with an optional residual filter
    /// applied to the concatenated row.
    HashJoin {
        /// Build/probe sides.
        left: PlanRef,
        /// Right input.
        right: PlanRef,
        /// Key expressions over the left row.
        left_keys: Vec<Expr>,
        /// Key expressions over the right row (same length).
        right_keys: Vec<Expr>,
        /// Join variant.
        kind: JoinKind,
        /// Residual predicate over (left ++ right).
        filter: Option<Expr>,
    },
    /// Index nested-loop join: for each outer row, probe `table` by
    /// equality on `probe` columns (primary key or a secondary index).
    /// This is what keeps generated triggers O(affected) instead of
    /// O(database) — see Fig. 23.
    IndexJoin {
        /// Outer (driving) input — typically transition-derived, small.
        outer: PlanRef,
        /// Inner stored table.
        table: String,
        /// Probe the current or old epoch of the inner table.
        epoch: TableEpoch,
        /// `(inner column, outer expression)` equality pairs. Either the
        /// full primary key or a single secondary-indexed column.
        probe: Vec<(usize, Expr)>,
        /// Join variant (left = outer).
        kind: JoinKind,
        /// Residual predicate over (outer ++ inner).
        filter: Option<Expr>,
    },
    /// Cross/theta join evaluated by nested loops (used only where the
    /// paper's CreateAKGraph requires a genuine cross product, Fig. 8
    /// lines 36-39).
    NestedLoopJoin {
        /// Left input.
        left: PlanRef,
        /// Right input.
        right: PlanRef,
        /// Optional theta predicate over (left ++ right).
        predicate: Option<Expr>,
        /// Join variant.
        kind: JoinKind,
    },
    /// γ — hash aggregation. Output columns: group expressions then
    /// aggregates. With no group expressions, emits exactly one row.
    HashAggregate {
        /// Input plan.
        input: PlanRef,
        /// Grouping expressions.
        group_exprs: Vec<Expr>,
        /// Aggregate columns.
        aggs: Vec<AggExpr>,
    },
    /// UNION ALL of same-arity inputs.
    UnionAll {
        /// Inputs.
        inputs: Vec<PlanRef>,
    },
    /// Duplicate elimination over whole rows.
    Distinct {
        /// Input plan.
        input: PlanRef,
    },
    /// Stable sort by the given keys.
    Sort {
        /// Input plan.
        input: PlanRef,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// XQGM's Unnest: evaluate `expr` per input row (an XML fragment,
    /// element or NULL) and emit `row ++ [item]` once per contained node.
    Unnest {
        /// Input plan.
        input: PlanRef,
        /// Expression yielding the sequence to unnest.
        expr: Expr,
    },
}

impl PhysicalPlan {
    /// Wrap into a shared handle.
    pub fn into_ref(self) -> PlanRef {
        Arc::new(self)
    }

    /// Number of output columns, resolved against `db` for table scans.
    pub fn arity(&self, db: &Database) -> Result<usize> {
        Ok(match self {
            PhysicalPlan::TableScan { table, .. } | PhysicalPlan::TransitionScan { table, .. } => {
                db.table(table)?.schema().arity()
            }
            PhysicalPlan::Values { arity, .. } => *arity,
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Sort { input, .. } => input.arity(db)?,
            PhysicalPlan::Project { exprs, .. } => exprs.len(),
            PhysicalPlan::HashJoin {
                left, right, kind, ..
            } => {
                if kind.keeps_right() {
                    left.arity(db)? + right.arity(db)?
                } else {
                    left.arity(db)?
                }
            }
            PhysicalPlan::IndexJoin {
                outer, table, kind, ..
            } => {
                if kind.keeps_right() {
                    outer.arity(db)? + db.table(table)?.schema().arity()
                } else {
                    outer.arity(db)?
                }
            }
            PhysicalPlan::NestedLoopJoin {
                left, right, kind, ..
            } => {
                if kind.keeps_right() {
                    left.arity(db)? + right.arity(db)?
                } else {
                    left.arity(db)?
                }
            }
            PhysicalPlan::HashAggregate {
                group_exprs, aggs, ..
            } => group_exprs.len() + aggs.len(),
            PhysicalPlan::UnionAll { inputs } => {
                let first = inputs
                    .first()
                    .ok_or_else(|| Error::Plan("UnionAll with no inputs".into()))?;
                first.arity(db)?
            }
            PhysicalPlan::Unnest { input, .. } => input.arity(db)? + 1,
        })
    }

    /// Multi-line EXPLAIN-style rendering (shared subplans are annotated).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            PhysicalPlan::TableScan { table, epoch } => {
                let _ = writeln!(out, "{pad}TableScan {table} [{epoch:?}]");
            }
            PhysicalPlan::TransitionScan {
                table,
                side,
                pruned,
            } => {
                let sym = match side {
                    TransitionSide::Delta => "Δ",
                    TransitionSide::Nabla => "∇",
                };
                let p = if *pruned { " pruned" } else { "" };
                let _ = writeln!(out, "{pad}TransitionScan {sym}{table}{p}");
            }
            PhysicalPlan::Values { arity, rows } => {
                let _ = writeln!(out, "{pad}Values arity={arity} rows={}", rows.len());
            }
            PhysicalPlan::Filter { input, predicate } => {
                let _ = writeln!(out, "{pad}Filter {predicate:?}");
                input.explain_into(out, depth + 1);
            }
            PhysicalPlan::Project { input, exprs } => {
                let _ = writeln!(out, "{pad}Project [{}]", exprs.len());
                input.explain_into(out, depth + 1);
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                kind,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}HashJoin {kind:?} on {left_keys:?} = {right_keys:?}"
                );
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            PhysicalPlan::IndexJoin {
                outer,
                table,
                epoch,
                probe,
                kind,
                ..
            } => {
                let cols: Vec<usize> = probe.iter().map(|(c, _)| *c).collect();
                let _ = writeln!(
                    out,
                    "{pad}IndexJoin {kind:?} -> {table}[{epoch:?}] probe cols {cols:?}"
                );
                outer.explain_into(out, depth + 1);
            }
            PhysicalPlan::NestedLoopJoin {
                left, right, kind, ..
            } => {
                let _ = writeln!(out, "{pad}NestedLoopJoin {kind:?}");
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            PhysicalPlan::HashAggregate {
                input,
                group_exprs,
                aggs,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}HashAggregate groups={} aggs={}",
                    group_exprs.len(),
                    aggs.len()
                );
                input.explain_into(out, depth + 1);
            }
            PhysicalPlan::UnionAll { inputs } => {
                let _ = writeln!(out, "{pad}UnionAll [{}]", inputs.len());
                for i in inputs {
                    i.explain_into(out, depth + 1);
                }
            }
            PhysicalPlan::Distinct { input } => {
                let _ = writeln!(out, "{pad}Distinct");
                input.explain_into(out, depth + 1);
            }
            PhysicalPlan::Sort { input, keys } => {
                let _ = writeln!(out, "{pad}Sort [{} keys]", keys.len());
                input.explain_into(out, depth + 1);
            }
            PhysicalPlan::Unnest { input, expr } => {
                let _ = writeln!(out, "{pad}Unnest {expr:?}");
                input.explain_into(out, depth + 1);
            }
        }
    }
}
