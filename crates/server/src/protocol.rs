//! The wire format: length-prefixed, CRC-framed request/response payloads.
//!
//! Every frame, in both directions, is
//!
//! ```text
//! +----------------+----------------+------------------------+
//! | len: u32 LE    | crc: u32 LE    | payload (len bytes)    |
//! +----------------+----------------+------------------------+
//! ```
//!
//! where `crc` is the CRC-32 (IEEE) of the payload — the same checksum the
//! write-ahead log uses, so a flipped bit anywhere in a frame is caught
//! before the payload is interpreted. `len` is bounded by the server's
//! configured maximum frame size; an oversized header is rejected *before*
//! buffering, so a malicious length cannot make the server allocate.
//!
//! Payloads reuse the storage layer's byte codecs
//! ([`Enc`]/[`Dec`]): little-endian
//! integers, `u32`-length-prefixed UTF-8 strings, one tag byte per enum
//! variant. The first payload byte is the frame tag:
//!
//! | tag | direction | body |
//! |---|---|---|
//! | `0x01` EXECUTE | request | statement text |
//! | `0x80` ROWS_AFFECTED | response | `u64` count |
//! | `0x81` ROWS | response | column names, then rows of typed values |
//! | `0x82` CREATED | response | object kind + name |
//! | `0x83` DROPPED | response | object kind + name |
//! | `0x84` EXPLAIN | response | rendering text |
//! | `0x85` XML | response | serialized XML fragments |
//! | `0x86` ANALYSIS | response | analysis counts, then the rendered report |
//! | `0xE0` ERROR | response | error kind, message, optional byte span |
//!
//! Error kinds distinguish *statement* errors (parse errors with their
//! byte span, engine errors — the connection stays open) from
//! *connection* errors (protocol violations, shutdown, admission
//! rejection — the server closes the connection after responding).
//! `ShuttingDown` and `Busy` are **retriable**: the statement was never
//! executed.

use std::fmt;
use std::io::{self, Write};

use quark_core::relational::wire::{Dec, Enc};
use quark_core::relational::{Row, Value};
use quark_core::storage::crc::crc32;
use quark_core::{AnalysisReport, ObjectKind, Span, StatementError, StatementResult};

/// Frame header: payload length + payload CRC, 4 bytes each.
pub const HEADER_LEN: usize = 8;

/// Default maximum payload size (16 MiB).
pub const MAX_FRAME_DEFAULT: usize = 16 * 1024 * 1024;

const REQ_EXECUTE: u8 = 0x01;
const RESP_ROWS_AFFECTED: u8 = 0x80;
const RESP_ROWS: u8 = 0x81;
const RESP_CREATED: u8 = 0x82;
const RESP_DROPPED: u8 = 0x83;
const RESP_EXPLAIN: u8 = 0x84;
const RESP_XML: u8 = 0x85;
const RESP_ANALYSIS: u8 = 0x86;
const RESP_ERROR: u8 = 0xE0;

/// One decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Execute one statement of the session surface.
    Execute(String),
}

/// Wire-level mirror of [`StatementResult`]: XML results travel as
/// serialized text (the tree is rebuilt client-side on demand), everything
/// else round-trips typed.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResult {
    /// Rows changed by a data-change statement.
    RowsAffected(u64),
    /// `SELECT` / `STATS` output.
    Rows {
        /// Projected column names.
        columns: Vec<String>,
        /// Result rows.
        rows: Vec<Row>,
    },
    /// A schema object was created.
    Created {
        /// What was created.
        kind: ObjectKind,
        /// Its name.
        name: String,
    },
    /// A schema object was dropped.
    Dropped {
        /// What was dropped.
        kind: ObjectKind,
        /// Its name.
        name: String,
    },
    /// `EXPLAIN TRIGGER` rendering.
    Explain(String),
    /// `MATERIALIZE` output, one serialized fragment per monitored node.
    Xml(Vec<String>),
    /// `ANALYZE TRIGGERS` output: the summary counts and rendered report.
    Analysis(AnalysisReport),
}

impl WireResult {
    /// Rows affected, if this is a data-change result.
    pub fn rows_affected(&self) -> Option<u64> {
        match self {
            WireResult::RowsAffected(n) => Some(*n),
            _ => None,
        }
    }
}

/// What kind of failure an ERROR frame reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireErrorKind {
    /// Statement parse/bind failure (span points into the statement text).
    Parse,
    /// Engine error executing a well-formed statement.
    Db,
    /// Protocol violation (torn/oversized/CRC-bad frame, unknown tag).
    /// The server closes the connection after sending this.
    Protocol,
    /// The server is draining for shutdown; the statement was **not**
    /// executed and can be retried against a restarted server.
    ShuttingDown,
    /// The worker pool's admission queue was full; the connection was
    /// never served. Retriable.
    Busy,
}

impl WireErrorKind {
    fn to_u8(self) -> u8 {
        match self {
            WireErrorKind::Parse => 0,
            WireErrorKind::Db => 1,
            WireErrorKind::Protocol => 2,
            WireErrorKind::ShuttingDown => 3,
            WireErrorKind::Busy => 4,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => WireErrorKind::Parse,
            1 => WireErrorKind::Db,
            2 => WireErrorKind::Protocol,
            3 => WireErrorKind::ShuttingDown,
            4 => WireErrorKind::Busy,
            _ => return None,
        })
    }

    /// `true` if the statement was provably never executed and can be
    /// resent verbatim ([`ShuttingDown`](WireErrorKind::ShuttingDown) /
    /// [`Busy`](WireErrorKind::Busy)).
    pub fn is_retriable(self) -> bool {
        matches!(self, WireErrorKind::ShuttingDown | WireErrorKind::Busy)
    }
}

/// An error frame, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Failure class.
    pub kind: WireErrorKind,
    /// Human-readable message.
    pub message: String,
    /// Byte span into the statement text, for parse errors.
    pub span: Option<Span>,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.kind, self.span) {
            (WireErrorKind::Parse, Some(span)) => {
                write!(f, "parse error at {span}: {}", self.message)
            }
            _ => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for WireError {}

fn object_kind_u8(kind: ObjectKind) -> u8 {
    match kind {
        ObjectKind::Table => 0,
        ObjectKind::Index => 1,
        ObjectKind::View => 2,
        ObjectKind::Trigger => 3,
    }
}

fn object_kind_from(v: u8) -> Result<ObjectKind, String> {
    Ok(match v {
        0 => ObjectKind::Table,
        1 => ObjectKind::Index,
        2 => ObjectKind::View,
        3 => ObjectKind::Trigger,
        other => return Err(format!("bad object kind byte 0x{other:02x}")),
    })
}

// ----------------------------------------------------------------------
// Framing
// ----------------------------------------------------------------------

/// Write one frame: header (length + CRC) followed by the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)
}

/// Outcome of one framing step over a receive buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum Framing {
    /// Not enough buffered bytes for a complete frame yet.
    Need,
    /// One complete, CRC-verified payload (consumed from the buffer).
    Frame(Vec<u8>),
    /// Unrecoverable framing violation; the connection must close.
    Bad(String),
}

/// Try to peel one frame off the front of `buf`. Oversized length headers
/// and CRC mismatches are [`Framing::Bad`] — a stream that has lost frame
/// alignment cannot be resynchronized, only closed.
pub fn decode_frame(buf: &mut Vec<u8>, max_frame: usize) -> Framing {
    if buf.len() < HEADER_LEN {
        return Framing::Need;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > max_frame {
        return Framing::Bad(format!("frame of {len} bytes exceeds maximum {max_frame}"));
    }
    if buf.len() < HEADER_LEN + len {
        return Framing::Need;
    }
    let want = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let payload: Vec<u8> = buf[HEADER_LEN..HEADER_LEN + len].to_vec();
    buf.drain(..HEADER_LEN + len);
    let got = crc32(&payload);
    if got != want {
        return Framing::Bad(format!(
            "frame checksum mismatch (got {got:#010x}, header says {want:#010x})"
        ));
    }
    Framing::Frame(payload)
}

// ----------------------------------------------------------------------
// Requests
// ----------------------------------------------------------------------

/// Encode an EXECUTE request payload.
pub fn encode_request(statement: &str) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u8(REQ_EXECUTE);
    enc.str(statement);
    enc.into_bytes()
}

/// Decode a request payload (CRC already verified by the framing layer, so
/// any failure here is a protocol violation, not line noise).
pub fn decode_request(payload: &[u8]) -> Result<Request, String> {
    let mut dec = Dec::new(payload);
    let tag = dec.u8().map_err(|e| e.to_string())?;
    match tag {
        REQ_EXECUTE => {
            let text = dec.str().map_err(|e| format!("bad statement text: {e}"))?;
            dec.finish()
                .map_err(|_| "trailing bytes after request".to_string())?;
            Ok(Request::Execute(text))
        }
        other => Err(format!("unknown request tag 0x{other:02x}")),
    }
}

// ----------------------------------------------------------------------
// Responses
// ----------------------------------------------------------------------

/// Encode a successful statement result. [`Value::Xml`] cells (possible in
/// principle for computed outputs) are downgraded to their serialized text
/// — stored tables cannot contain XML, so `SELECT`/`STATS` rows round-trip
/// typed.
pub fn encode_result(result: &StatementResult) -> Vec<u8> {
    let mut enc = Enc::new();
    match result {
        StatementResult::RowsAffected(n) => {
            enc.u8(RESP_ROWS_AFFECTED);
            enc.u64(*n as u64);
        }
        StatementResult::Rows { columns, rows } => {
            enc.u8(RESP_ROWS);
            enc.u32(columns.len() as u32);
            for c in columns {
                enc.str(c);
            }
            enc.u32(rows.len() as u32);
            for row in rows {
                enc.u32(row.len() as u32);
                for v in row.iter() {
                    let flat;
                    let v = match v {
                        Value::Xml(x) => {
                            flat = Value::str(x.to_xml());
                            &flat
                        }
                        other => other,
                    };
                    enc.value(v).expect("non-XML value always encodes");
                }
            }
        }
        StatementResult::Created { kind, name } => {
            enc.u8(RESP_CREATED);
            enc.u8(object_kind_u8(*kind));
            enc.str(name);
        }
        StatementResult::Dropped { kind, name } => {
            enc.u8(RESP_DROPPED);
            enc.u8(object_kind_u8(*kind));
            enc.str(name);
        }
        StatementResult::Explain(text) => {
            enc.u8(RESP_EXPLAIN);
            enc.str(text);
        }
        StatementResult::Xml(nodes) => {
            enc.u8(RESP_XML);
            enc.u32(nodes.len() as u32);
            for n in nodes {
                enc.str(&n.to_xml());
            }
        }
        StatementResult::Analysis(report) => {
            enc.u8(RESP_ANALYSIS);
            enc.u64(report.groups);
            enc.u64(report.errors);
            enc.u64(report.warnings);
            enc.u64(report.cycles_bounded);
            enc.u64(report.cycles_unbounded);
            enc.u64(report.commuting_pairs);
            enc.u64(report.conflicting_pairs);
            enc.str(&report.text);
        }
    }
    enc.into_bytes()
}

/// Encode an ERROR response payload.
pub fn encode_error(kind: WireErrorKind, message: &str, span: Option<Span>) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u8(RESP_ERROR);
    enc.u8(kind.to_u8());
    enc.str(message);
    match span {
        Some(span) => {
            enc.u8(1);
            enc.u64(span.start as u64);
            enc.u64(span.end as u64);
        }
        None => enc.u8(0),
    }
    enc.into_bytes()
}

/// Encode a [`StatementError`] (parse errors keep their span).
pub fn encode_statement_error(e: &StatementError) -> Vec<u8> {
    match e {
        StatementError::Parse { message, span } => {
            encode_error(WireErrorKind::Parse, message, Some(*span))
        }
        StatementError::Db(db) => encode_error(WireErrorKind::Db, &db.to_string(), None),
    }
}

/// Decode a response payload. The outer `Err` is a protocol violation
/// (malformed payload); the inner `Err` is a well-formed ERROR frame.
#[allow(clippy::type_complexity)]
pub fn decode_response(payload: &[u8]) -> Result<Result<WireResult, WireError>, String> {
    let mut dec = Dec::new(payload);
    let tag = dec.u8().map_err(|e| e.to_string())?;
    let strerr = |e: quark_core::relational::Error| e.to_string();
    let ok = match tag {
        RESP_ROWS_AFFECTED => WireResult::RowsAffected(dec.u64().map_err(strerr)?),
        RESP_ROWS => {
            let ncols = dec.u32().map_err(strerr)? as usize;
            let mut columns = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                columns.push(dec.str().map_err(strerr)?);
            }
            let nrows = dec.u32().map_err(strerr)? as usize;
            let mut rows = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                let arity = dec.u32().map_err(strerr)? as usize;
                let mut row = Vec::with_capacity(arity);
                for _ in 0..arity {
                    row.push(dec.value().map_err(strerr)?);
                }
                rows.push(quark_core::relational::row(row));
            }
            WireResult::Rows { columns, rows }
        }
        RESP_CREATED => WireResult::Created {
            kind: object_kind_from(dec.u8().map_err(strerr)?)?,
            name: dec.str().map_err(strerr)?,
        },
        RESP_DROPPED => WireResult::Dropped {
            kind: object_kind_from(dec.u8().map_err(strerr)?)?,
            name: dec.str().map_err(strerr)?,
        },
        RESP_EXPLAIN => WireResult::Explain(dec.str().map_err(strerr)?),
        RESP_XML => {
            let n = dec.u32().map_err(strerr)? as usize;
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(dec.str().map_err(strerr)?);
            }
            WireResult::Xml(out)
        }
        RESP_ANALYSIS => WireResult::Analysis(AnalysisReport {
            groups: dec.u64().map_err(strerr)?,
            errors: dec.u64().map_err(strerr)?,
            warnings: dec.u64().map_err(strerr)?,
            cycles_bounded: dec.u64().map_err(strerr)?,
            cycles_unbounded: dec.u64().map_err(strerr)?,
            commuting_pairs: dec.u64().map_err(strerr)?,
            conflicting_pairs: dec.u64().map_err(strerr)?,
            text: dec.str().map_err(strerr)?,
        }),
        RESP_ERROR => {
            let kind = WireErrorKind::from_u8(dec.u8().map_err(strerr)?)
                .ok_or_else(|| "bad error kind byte".to_string())?;
            let message = dec.str().map_err(strerr)?;
            let span = match dec.u8().map_err(strerr)? {
                0 => None,
                _ => Some(Span::new(
                    dec.u64().map_err(strerr)? as usize,
                    dec.u64().map_err(strerr)? as usize,
                )),
            };
            dec.finish()
                .map_err(|_| "trailing bytes after response".to_string())?;
            return Ok(Err(WireError {
                kind,
                message,
                span,
            }));
        }
        other => return Err(format!("unknown response tag 0x{other:02x}")),
    };
    dec.finish()
        .map_err(|_| "trailing bytes after response".to_string())?;
    Ok(Ok(ok))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let payload = encode_request("SELECT a FROM t");
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut buf = wire.clone();
        let Framing::Frame(got) = decode_frame(&mut buf, MAX_FRAME_DEFAULT) else {
            panic!("frame must decode");
        };
        assert_eq!(got, payload);
        assert!(buf.is_empty());
        assert_eq!(decode_frame(&mut buf, MAX_FRAME_DEFAULT), Framing::Need);
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let payload = encode_request("SELECT a FROM t");
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        for cut in [0, 3, HEADER_LEN, wire.len() - 1] {
            let mut buf = wire[..cut].to_vec();
            assert_eq!(
                decode_frame(&mut buf, MAX_FRAME_DEFAULT),
                Framing::Need,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn corrupt_and_oversized_frames_are_bad() {
        let payload = encode_request("SELECT a FROM t");
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        // Flip one payload bit: CRC mismatch.
        let mut corrupt = wire.clone();
        *corrupt.last_mut().unwrap() ^= 0x40;
        assert!(matches!(
            decode_frame(&mut corrupt, MAX_FRAME_DEFAULT),
            Framing::Bad(_)
        ));
        // Oversized length header: rejected before buffering.
        let mut oversized = u32::MAX.to_le_bytes().to_vec();
        oversized.extend_from_slice(&[0; 4]);
        assert!(matches!(
            decode_frame(&mut oversized, MAX_FRAME_DEFAULT),
            Framing::Bad(_)
        ));
    }

    #[test]
    fn requests_round_trip() {
        let payload = encode_request("INSERT INTO t VALUES (1)");
        assert_eq!(
            decode_request(&payload).unwrap(),
            Request::Execute("INSERT INTO t VALUES (1)".into())
        );
        assert!(decode_request(&[0x7f]).is_err(), "unknown tag");
        assert!(decode_request(&[]).is_err(), "empty payload");
    }

    #[test]
    fn results_round_trip() {
        use quark_core::relational::row;
        let cases = [
            StatementResult::RowsAffected(7),
            StatementResult::Rows {
                columns: vec!["a".into(), "b".into()],
                rows: vec![
                    row([Value::Int(1), Value::str("x")]),
                    row([Value::Null, Value::Double(2.5)]),
                ],
            },
            StatementResult::Created {
                kind: ObjectKind::View,
                name: "v".into(),
            },
            StatementResult::Dropped {
                kind: ObjectKind::Trigger,
                name: "t".into(),
            },
            StatementResult::Explain("plan".into()),
            StatementResult::Analysis(AnalysisReport {
                groups: 3,
                errors: 1,
                warnings: 2,
                cycles_bounded: 1,
                cycles_unbounded: 0,
                commuting_pairs: 2,
                conflicting_pairs: 1,
                text: "trigger program analysis".into(),
            }),
        ];
        for case in &cases {
            let wire = decode_response(&encode_result(case)).unwrap().unwrap();
            match (case, &wire) {
                (StatementResult::RowsAffected(n), WireResult::RowsAffected(m)) => {
                    assert_eq!(*n as u64, *m)
                }
                (
                    StatementResult::Rows { columns, rows },
                    WireResult::Rows {
                        columns: c,
                        rows: r,
                    },
                ) => {
                    assert_eq!(columns, c);
                    assert_eq!(rows, r);
                }
                (
                    StatementResult::Created { kind, name },
                    WireResult::Created { kind: k, name: n },
                ) => {
                    assert_eq!((kind, name.as_str()), (k, n.as_str()))
                }
                (
                    StatementResult::Dropped { kind, name },
                    WireResult::Dropped { kind: k, name: n },
                ) => {
                    assert_eq!((kind, name.as_str()), (k, n.as_str()))
                }
                (StatementResult::Explain(a), WireResult::Explain(b)) => assert_eq!(a, b),
                (StatementResult::Analysis(a), WireResult::Analysis(b)) => assert_eq!(a, b),
                other => panic!("variant mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn errors_round_trip_with_spans() {
        let payload = encode_error(WireErrorKind::Parse, "oops", Some(Span::new(3, 9)));
        let err = decode_response(&payload).unwrap().unwrap_err();
        assert_eq!(err.kind, WireErrorKind::Parse);
        assert_eq!(err.span, Some(Span::new(3, 9)));
        assert!(!err.kind.is_retriable());
        let payload = encode_error(WireErrorKind::ShuttingDown, "draining", None);
        let err = decode_response(&payload).unwrap().unwrap_err();
        assert!(err.kind.is_retriable());
    }
}
