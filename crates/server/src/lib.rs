//! Network front door for the trigger engine: a pipelined, CRC-framed
//! wire protocol served over plain TCP by a bounded worker pool on top of
//! [`SessionPool`](quark_core::SessionPool).
//!
//! The engine underneath already supports many concurrent in-process
//! sessions (footprint-latched writers, lock-free snapshot reads); this
//! crate puts that surface on a socket so sessions no longer have to live
//! in the server's address space. Deliberately std-only — no async
//! runtime: a fixed pool of worker threads, blocking sockets with poll
//! timeouts, and explicit backpressure bounds memory without one.
//!
//! # Frame layout
//!
//! ```text
//! +-------------+-------------+---------------------+
//! | len: u32 LE | crc: u32 LE | payload (len bytes) |
//! +-------------+-------------+---------------------+
//! ```
//!
//! `crc` is the CRC-32 (IEEE) of the payload, the same checksum the WAL
//! uses. Requests carry statement text; responses carry typed
//! [`StatementResult`](quark_core::StatementResult) encodings or an error
//! frame whose kind says whether the statement provably never executed
//! (see [`protocol`]).
//!
//! # Pipelining and backpressure
//!
//! Clients may stream frames without waiting. The server gathers up to a
//! configured window of decoded frames per connection, then *stops
//! reading the socket* until the window drains — TCP flow control pushes
//! back on the client rather than the server buffering without bound.
//! Inside a window, consecutive `INSERT`s into the same table coalesce
//! into one batched statement (one transition table, one trigger
//! cascade), which is where the wire path recovers the in-process
//! batched-ingest speedup.
//!
//! # Quick start
//!
//! ```no_run
//! use quark_core::{relational::Database, system::Mode, SessionPool};
//! use quark_server::{Client, Server, ServerConfig};
//!
//! let pool = SessionPool::new(quark_xquery::session(Database::new(), Mode::Grouped));
//! let server = Server::start(pool, "127.0.0.1:0", ServerConfig::default())?;
//!
//! let mut client = Client::connect(server.addr())?;
//! client.execute("CREATE TABLE t (a INT)")?;
//! let results = client.execute_pipelined(
//!     ["INSERT INTO t VALUES (1)", "INSERT INTO t VALUES (2)"],
//! )?;
//! assert_eq!(results.len(), 2);
//!
//! server.shutdown(); // drain, join, checkpoint
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod protocol;
pub mod quark_client;
mod server;

pub use protocol::{WireError, WireErrorKind, WireResult};
pub use quark_client::{Client, ClientError, RetryPolicy};
pub use server::{Server, ServerConfig, ServerHandle};
