//! A minimal blocking client for the wire protocol — enough to drive a
//! server from tests, benchmarks, and other processes without an async
//! runtime.
//!
//! Two call shapes:
//!
//! * [`Client::execute`] — one statement, one round trip. Statement-level
//!   failures (parse/engine errors) come back as
//!   [`ClientError::Remote`]; the connection stays usable.
//! * [`Client::execute_pipelined`] — stream many statements before
//!   reading any response. The client interleaves writes and reads under
//!   a fixed credit window so an arbitrarily long batch can never
//!   deadlock against the server's own backpressure (both sides writing,
//!   neither reading). Per-statement outcomes come back positionally.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    decode_frame, decode_response, encode_request, write_frame, Framing, WireError, WireResult,
    MAX_FRAME_DEFAULT,
};

/// How many request frames [`Client::execute_pipelined`] may write ahead
/// of the responses it has read. Matches the server's default pipeline
/// window; correctness only needs it to be finite.
const PIPELINE_CREDITS: usize = 64;

/// Why a client call failed at the *connection* level. Statement-level
/// failures are [`ClientError::Remote`] and leave the connection usable.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The peer broke the wire protocol (malformed frame or payload).
    Protocol(String),
    /// The server reported a statement or connection error.
    Remote(WireError),
    /// The server closed the connection before answering.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
            ClientError::Closed => f.write_str("connection closed by server"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Bounded exponential backoff with decorrelated jitter for retriable
/// server rejections.
///
/// The server answers `Busy` (admission queue full) and `ShuttingDown`
/// (drain in progress) *before* executing anything and then closes the
/// connection, so a rejected statement provably never ran and can be
/// resent verbatim — but only on a **fresh** connection. The policy
/// bounds both the attempt count and the per-attempt delay.
///
/// [`execute_with_retry`](Client::execute_with_retry) sleeps a
/// *decorrelated jitter* schedule — each delay is drawn uniformly from
/// `[base_delay, 3 × previous_delay]`, capped at
/// [`max_delay`](RetryPolicy::max_delay) — so a fleet of clients rejected
/// by the same `Busy` burst does not reconnect in lockstep and re-create
/// the burst. [`delay_for`](RetryPolicy::delay_for) remains the
/// deterministic doubling schedule: it is the jitter's upper envelope and
/// what callers needing reproducible timing can use directly.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total connection attempts (≥ 1); the first carries no delay.
    pub attempts: u32,
    /// Delay before the second attempt; doubles per subsequent attempt.
    pub base_delay: Duration,
    /// Ceiling on the per-attempt delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// Deterministic backoff before retry number `attempt` (0-based):
    /// `base_delay` doubled `attempt` times, capped at `max_delay`. The
    /// upper envelope of the jittered schedule.
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX);
        self.base_delay
            .checked_mul(factor)
            .map_or(self.max_delay, |d| d.min(self.max_delay))
    }

    /// Start a jittered delay sequence (one per retry loop).
    fn jitter(&self) -> Jitter {
        Jitter {
            policy: *self,
            prev: self.base_delay,
            rng: rng_seed(),
        }
    }
}

/// Stateful decorrelated-jitter schedule: `next ∈ [base, 3 × prev]`,
/// capped at `max_delay` (AWS architecture blog's "decorrelated jitter").
struct Jitter {
    policy: RetryPolicy,
    prev: Duration,
    rng: u64,
}

impl Jitter {
    fn next_delay(&mut self) -> Duration {
        let base = self.policy.base_delay.as_nanos() as u64;
        let ceiling = (self.prev.as_nanos() as u64).saturating_mul(3).max(base);
        // xorshift64: cheap, no external deps, quality is ample for spreading
        // sleep times.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let span = ceiling - base;
        let nanos = if span == 0 {
            base
        } else {
            base + self.rng % (span + 1)
        };
        let delay = Duration::from_nanos(nanos).min(self.policy.max_delay);
        self.prev = delay;
        delay
    }
}

/// Seed from wall-clock nanos and the thread id so concurrent clients
/// started in the same instant still decorrelate.
fn rng_seed() -> u64 {
    use std::hash::BuildHasher;
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x9e37_79b9_7f4a_7c15);
    let tid = std::collections::hash_map::RandomState::new().hash_one(std::thread::current().id());
    // A zero state would keep xorshift at zero forever.
    (nanos ^ tid) | 1
}

/// A blocking connection to a quark server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    buf: Vec<u8>,
    max_frame: usize,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            buf: Vec::new(),
            max_frame: MAX_FRAME_DEFAULT,
        })
    }

    /// Read one complete response frame (blocking). Useful after
    /// [`Client::send_raw`], when responses must be consumed positionally;
    /// [`Client::execute`] pairs the write and the read for you.
    pub fn read_response(&mut self) -> Result<Result<WireResult, WireError>, ClientError> {
        loop {
            match decode_frame(&mut self.buf, self.max_frame) {
                Framing::Frame(payload) => {
                    return decode_response(&payload).map_err(ClientError::Protocol)
                }
                Framing::Bad(msg) => return Err(ClientError::Protocol(msg)),
                Framing::Need => {}
            }
            let mut scratch = [0u8; 16 * 1024];
            let n = self.reader.read(&mut scratch)?;
            if n == 0 {
                return if self.buf.is_empty() {
                    Err(ClientError::Closed)
                } else {
                    Err(ClientError::Protocol("torn response frame".into()))
                };
            }
            self.buf.extend_from_slice(&scratch[..n]);
        }
    }

    /// Execute one statement and wait for its result.
    pub fn execute(&mut self, statement: &str) -> Result<WireResult, ClientError> {
        write_frame(&mut self.writer, &encode_request(statement))?;
        self.writer.flush()?;
        self.read_response()?.map_err(ClientError::Remote)
    }

    /// Stream `statements` down the connection without waiting for
    /// individual results, then return every outcome in order. The server
    /// executes them in order and may coalesce consecutive same-table
    /// `INSERT`s into one batched statement.
    ///
    /// The outer `Err` means the connection failed part-way: some prefix
    /// of the statements may have executed (retriable error kinds —
    /// [`WireErrorKind::is_retriable`](crate::protocol::WireErrorKind::is_retriable)
    /// — provably did not).
    pub fn execute_pipelined<'s>(
        &mut self,
        statements: impl IntoIterator<Item = &'s str>,
    ) -> Result<Vec<Result<WireResult, WireError>>, ClientError> {
        let mut results = Vec::new();
        let mut in_flight = 0usize;
        for stmt in statements {
            if in_flight >= PIPELINE_CREDITS {
                // Window full: a response must be consumed before the next
                // write, or both sides could block writing.
                self.writer.flush()?;
                results.push(self.read_response()?);
                in_flight -= 1;
            }
            write_frame(&mut self.writer, &encode_request(stmt))?;
            in_flight += 1;
        }
        self.writer.flush()?;
        for _ in 0..in_flight {
            results.push(self.read_response()?);
        }
        Ok(results)
    }

    /// Dial `addr` and execute one statement, retrying under `policy`
    /// when the server answers with a retriable rejection (`Busy` /
    /// `ShuttingDown` — see
    /// [`WireErrorKind::is_retriable`](crate::protocol::WireErrorKind::is_retriable)).
    ///
    /// Those frames are sent *before* any execution and the server closes
    /// the connection after them, so each retry must — and does — dial a
    /// fresh connection; the statement provably never ran, making the
    /// resend safe. Connect failures are also retried (dialing executes
    /// nothing), but any other error — including statement-level
    /// [`ClientError::Remote`] failures — returns immediately: after an
    /// ambiguous mid-execution failure a blind resend could double-apply.
    ///
    /// On success returns the live connection alongside the result so the
    /// caller can keep using it.
    pub fn execute_with_retry(
        addr: impl ToSocketAddrs,
        statement: &str,
        policy: RetryPolicy,
    ) -> Result<(Client, WireResult), ClientError> {
        let mut last = ClientError::Protocol("retry policy allows zero attempts".into());
        let mut jitter = policy.jitter();
        for attempt in 0..policy.attempts {
            if attempt > 0 {
                std::thread::sleep(jitter.next_delay());
            }
            let mut client = match Client::connect(&addr) {
                Ok(c) => c,
                Err(e) => {
                    last = ClientError::Io(e);
                    continue;
                }
            };
            match client.execute(statement) {
                Ok(result) => return Ok((client, result)),
                Err(ClientError::Remote(e)) if e.kind.is_retriable() => {
                    last = ClientError::Remote(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// Send raw bytes down the connection, bypassing the framing layer —
    /// for protocol-robustness tests that need to produce torn or corrupt
    /// frames on purpose.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Read frames until the server closes the connection, returning the
    /// decoded responses. For tests asserting close-after-error behavior.
    pub fn drain_until_close(mut self) -> Vec<Result<WireResult, WireError>> {
        let mut out = Vec::new();
        loop {
            match self.read_response() {
                Ok(r) => out.push(r),
                Err(_) => return out,
            }
        }
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("buffered", &self.buf.len())
            .field("max_frame", &self.max_frame)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jittered_delays_stay_within_policy_bounds() {
        let policy = RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
        };
        let mut jitter = policy.jitter();
        let mut prev = policy.base_delay;
        for i in 0..200 {
            let d = jitter.next_delay();
            assert!(d >= policy.base_delay, "attempt {i}: {d:?} below base");
            assert!(d <= policy.max_delay, "attempt {i}: {d:?} above max");
            // Decorrelated: the ceiling is 3× the *previous* delay, not a
            // fixed doubling of the base.
            assert!(
                d <= (prev * 3).max(policy.base_delay).min(policy.max_delay),
                "attempt {i}: {d:?} above 3x previous {prev:?}"
            );
            prev = d;
        }
    }

    #[test]
    fn degenerate_policies_do_not_panic() {
        // Zero base: every delay collapses to the max-capped ceiling math.
        let zero = RetryPolicy {
            attempts: 3,
            base_delay: Duration::ZERO,
            max_delay: Duration::from_millis(1),
        };
        let mut jitter = zero.jitter();
        for _ in 0..10 {
            assert!(jitter.next_delay() <= zero.max_delay);
        }
        // Base above max: capped at max.
        let inverted = RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(5),
        };
        let mut jitter = inverted.jitter();
        for _ in 0..10 {
            assert_eq!(jitter.next_delay(), inverted.max_delay);
        }
    }

    #[test]
    fn two_sequences_decorrelate() {
        let policy = RetryPolicy::default();
        let schedule = || -> Vec<Duration> {
            let mut j = policy.jitter();
            (0..8).map(|_| j.next_delay()).collect()
        };
        // Seeds mix wall-clock nanos, so two schedules built moments apart
        // should diverge somewhere; identical ones would mean the jitter
        // degenerated to a fixed schedule. Tolerate a coarse clock by
        // allowing a few seed collisions before declaring degeneracy.
        let first = schedule();
        let diverged = (0..5).any(|_| {
            std::thread::sleep(Duration::from_micros(50));
            schedule() != first
        });
        assert!(
            diverged,
            "independent retry schedules must not be identical"
        );
    }
}
