//! The listener, the bounded worker pool, and the per-connection
//! pipelined statement loop.
//!
//! Shape (see the crate docs for the protocol itself):
//!
//! * **One listener thread** accepts connections and hands each to the
//!   worker pool over a *bounded* queue. A full queue is answered with a
//!   retriable `Busy` error frame and an immediate close — admission
//!   control, not unbounded buffering.
//! * **`workers` pooled threads**, each holding one forked [`Session`]
//!   onto the shared [`SessionPool`]. A worker serves one connection at a
//!   time to completion, then takes the next. The engine side already
//!   scales writers by footprint (per-table latches), so worker count —
//!   not lock splitting — is the only knob here.
//! * **Per-connection pipelining**: a client may stream many request
//!   frames without waiting. The worker decodes up to
//!   [`ServerConfig::max_pipeline`] frames ahead of execution; when the
//!   window fills it *stops reading the socket* (counted as a
//!   `backpressure_stalls`) until the in-flight statements drain, so TCP
//!   flow control pushes back on the client instead of the server
//!   buffering unboundedly. Within a decoded window, runs of ≥ 2
//!   consecutive `INSERT`s into one table coalesce into a single
//!   [`Session::execute_batch`] call (one transition table, one cascade —
//!   counted as `pipelined_batches`); a coalesced run succeeds or fails
//!   as a unit, exactly as if the client had sent one multi-row `INSERT`.
//! * **Graceful shutdown** ([`ServerHandle::shutdown`]): in-flight
//!   statements complete, every decoded-but-unexecuted frame is answered
//!   with a retriable `ShuttingDown` error, connections close, workers
//!   join, and the session pool is checkpointed so the WAL closes at a
//!   statement boundary ([`ServerHandle::close`] additionally consumes
//!   the pool via [`Session::close`]).

use std::io::{self, BufWriter, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use quark_core::{Session, SessionPool};

use crate::protocol::{
    decode_frame, decode_request, encode_error, encode_result, encode_statement_error, write_frame,
    Framing, Request, WireErrorKind, MAX_FRAME_DEFAULT,
};

/// Tunables of one [`Server::start`] call.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (= connections served concurrently). Default 4.
    pub workers: usize,
    /// Bounded handoff queue between the listener and the workers;
    /// connections beyond `workers + accept_queue` are busy-rejected.
    /// Default 8.
    pub accept_queue: usize,
    /// Per-connection pipeline window: how many decoded request frames may
    /// be queued ahead of execution before the server stops reading the
    /// socket. Default 64.
    pub max_pipeline: usize,
    /// Maximum accepted payload size in bytes; larger length headers are a
    /// protocol error. Default 16 MiB.
    pub max_frame: usize,
    /// How often blocked reads and the accept loop re-check the shutdown
    /// flag. Default 25 ms.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            accept_queue: 8,
            max_pipeline: 64,
            max_frame: MAX_FRAME_DEFAULT,
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// The network front door. Constructed via [`Server::start`]; interact
/// through the returned [`ServerHandle`].
pub struct Server;

impl Server {
    /// Bind `addr` (use port 0 for an OS-assigned port) and start serving
    /// the pool's statement surface. Returns once the listener is bound
    /// and the workers are running.
    pub fn start(
        pool: SessionPool,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(config.accept_queue.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|_| {
                let session = pool.session();
                let rx = Arc::clone(&rx);
                let shutdown = Arc::clone(&shutdown);
                let config = config.clone();
                std::thread::spawn(move || worker_loop(session, &rx, &shutdown, &config))
            })
            .collect();

        let listener_thread = {
            let session = pool.session();
            let shutdown = Arc::clone(&shutdown);
            let poll = config.poll_interval;
            std::thread::spawn(move || listen_loop(&listener, &tx, &session, &shutdown, poll))
        };

        Ok(ServerHandle {
            addr: local_addr,
            shutdown,
            listener_thread: Some(listener_thread),
            workers,
            pool: Some(pool),
        })
    }
}

/// A running server: the bound address, the shared pool, and the shutdown
/// switch. Dropping the handle shuts the server down (without the final
/// close — use [`ServerHandle::shutdown`] or [`ServerHandle::close`] to
/// observe errors).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    listener_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    pool: Option<SessionPool>,
}

impl ServerHandle {
    /// The address the server is listening on (with the OS-assigned port
    /// when started on port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A fresh in-process session onto the same pool the server serves —
    /// for inspection and differential checks alongside wire traffic.
    pub fn session(&self) -> Session {
        self.pool
            .as_ref()
            .expect("server pool present until shutdown")
            .session()
    }

    fn drain(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.listener_thread.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }

    /// Graceful shutdown: stop accepting, let in-flight statements finish,
    /// answer queued frames with retriable `ShuttingDown` errors, join
    /// every thread, then force a global commit + checkpoint so a durable
    /// pool's WAL closes at a statement boundary. Returns the pool for
    /// continued in-process use.
    pub fn shutdown(mut self) -> SessionPool {
        self.drain();
        let pool = self.pool.take().expect("pool present until shutdown");
        // Statement-boundary durable point: the guard's drop commits in
        // global mode and checkpoints (best effort; `close` surfaces
        // checkpoint errors for callers that need them).
        drop(pool.session().quark_mut());
        pool
    }

    /// [`ServerHandle::shutdown`], then tear the pool down via
    /// [`Session::close`], surfacing checkpoint errors.
    ///
    /// # Panics
    ///
    /// Panics if sessions handed out by [`ServerHandle::session`] (or pool
    /// forks taken before [`Server::start`]) are still alive, like
    /// [`Session::close`] itself.
    pub fn close(self) -> quark_core::relational::Result<()> {
        self.shutdown().into_session().close()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.drain();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .field("shutdown", &self.shutdown.load(Ordering::Relaxed))
            .finish()
    }
}

fn listen_loop(
    listener: &TcpListener,
    tx: &SyncSender<TcpStream>,
    session: &Session,
    shutdown: &AtomicBool,
    poll: Duration,
) {
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(stream)) => busy_reject(stream, session),
                Err(TrySendError::Disconnected(_)) => break,
            },
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(poll),
            // Transient accept failures (e.g. the peer reset before we
            // got to it) must not kill the listener.
            Err(_) => std::thread::sleep(poll),
        }
    }
    // Dropping `tx` (by returning) closes the queue; idle workers see the
    // disconnect and exit.
}

/// Admission control: the handoff queue is full, so this connection is
/// answered with one retriable `Busy` frame and closed without ever
/// reaching a worker.
fn busy_reject(stream: TcpStream, session: &Session) {
    session.database().note_frame_rejected();
    let payload = encode_error(
        WireErrorKind::Busy,
        "server at connection capacity; retry later",
        None,
    );
    let mut stream = stream;
    let _ = write_frame(&mut stream, &payload);
    let _ = stream.flush();
}

fn worker_loop(
    session: Session,
    rx: &Mutex<Receiver<TcpStream>>,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) {
    loop {
        // Take the next queued connection; holding the lock only for the
        // recv keeps the other workers' queue access independent.
        let next = {
            let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        let Ok(stream) = next else {
            return; // listener gone: shutdown
        };
        if shutdown.load(Ordering::Acquire) {
            // Queued behind the shutdown: answer like a busy reject so the
            // client knows nothing ran.
            busy_reject(stream, &session);
            continue;
        }
        session.database().note_connection(true);
        let _ = serve_connection(&session, stream, shutdown, config);
        session.database().note_connection(false);
    }
}

/// What ended one gather round on a connection.
enum GatherEnd {
    /// Frames decoded (or nothing arrived yet); keep serving.
    More,
    /// The pipeline window filled; the socket is deliberately not being
    /// read until this window drains.
    Stalled,
    /// Clean close: EOF on a frame boundary.
    Eof,
    /// EOF mid-frame: the peer died (or lied about the length).
    TornEof,
    /// Framing violation (oversized header, CRC mismatch).
    Bad(String),
    /// Shutdown was signaled while waiting for traffic.
    ShuttingDown,
    /// Unrecoverable socket error.
    Io,
}

/// Read until at least one complete frame is buffered (or the connection
/// ends), then opportunistically drain every already-available frame up to
/// the pipeline window — the pipelining heart: statements a client
/// streamed back-to-back arrive here as one window and become candidates
/// for batch coalescing.
fn gather_frames(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) -> (Vec<Vec<u8>>, GatherEnd) {
    let mut frames: Vec<Vec<u8>> = Vec::new();
    let mut scratch = [0u8; 64 * 1024];
    loop {
        // Drain complete frames out of the buffer first.
        while frames.len() < config.max_pipeline {
            match decode_frame(buf, config.max_frame) {
                Framing::Frame(p) => frames.push(p),
                Framing::Need => break,
                Framing::Bad(msg) => return (frames, GatherEnd::Bad(msg)),
            }
        }
        if frames.len() >= config.max_pipeline {
            return (frames, GatherEnd::Stalled);
        }
        if frames.is_empty() {
            // Nothing to execute yet: block (bounded by the poll interval
            // so shutdown stays responsive).
            if shutdown.load(Ordering::Acquire) {
                return (frames, GatherEnd::ShuttingDown);
            }
            match stream.read(&mut scratch) {
                Ok(0) => {
                    let end = if buf.is_empty() {
                        GatherEnd::Eof
                    } else {
                        GatherEnd::TornEof
                    };
                    return (frames, end);
                }
                Ok(n) => buf.extend_from_slice(&scratch[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(_) => return (frames, GatherEnd::Io),
            }
        } else {
            // Already have work: top the window up without blocking.
            if stream.set_nonblocking(true).is_err() {
                return (frames, GatherEnd::More);
            }
            let outcome = stream.read(&mut scratch);
            let _ = stream.set_nonblocking(false);
            match outcome {
                Ok(0) => {
                    // Note the EOF for *after* this window executes: the
                    // frames in hand still deserve responses. The next
                    // gather round re-observes the EOF.
                    return (frames, GatherEnd::More);
                }
                Ok(n) => buf.extend_from_slice(&scratch[..n]),
                Err(_) => return (frames, GatherEnd::More),
            }
        }
    }
}

/// First target table of an `INSERT INTO <table> …` statement, by a cheap
/// textual sniff — the coalescing pre-check. (The SQL grammar proper runs
/// inside `execute`/`execute_batch`; a false positive here merely routes a
/// malformed statement through `execute_batch`, which reports the same
/// parse error the direct path would.)
fn insert_target(stmt: &str) -> Option<&str> {
    let mut words = stmt.split_whitespace();
    if !words.next()?.eq_ignore_ascii_case("insert") {
        return None;
    }
    if !words.next()?.eq_ignore_ascii_case("into") {
        return None;
    }
    let table = words.next()?.split('(').next()?;
    (!table.is_empty()).then_some(table)
}

fn serve_connection(
    session: &Session,
    mut stream: TcpStream,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(config.poll_interval))?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (frames, end) = gather_frames(&mut stream, &mut buf, shutdown, config);
        if matches!(end, GatherEnd::Stalled) {
            session.database().note_backpressure_stall();
        }
        if !frames.is_empty() && !process_window(session, &mut writer, frames, shutdown)? {
            return Ok(()); // protocol error or shutdown mid-window; closed politely
        }
        match end {
            GatherEnd::More | GatherEnd::Stalled => {}
            GatherEnd::Eof | GatherEnd::Io => return Ok(()),
            GatherEnd::TornEof => {
                session.database().note_frame_rejected();
                return Ok(());
            }
            GatherEnd::Bad(msg) => {
                session.database().note_frame_rejected();
                write_frame(
                    &mut writer,
                    &encode_error(WireErrorKind::Protocol, &msg, None),
                )?;
                writer.flush()?;
                return Ok(());
            }
            GatherEnd::ShuttingDown => {
                // Courtesy drain: frames the client already sent (buffered
                // locally or sitting in the socket) get a retriable
                // refusal instead of a silent close, so a pipelining
                // client knows its tail never executed.
                if stream.set_nonblocking(true).is_ok() {
                    let mut scratch = [0u8; 64 * 1024];
                    while let Ok(n) = stream.read(&mut scratch) {
                        if n == 0 {
                            break;
                        }
                        buf.extend_from_slice(&scratch[..n]);
                    }
                }
                let payload = encode_error(
                    WireErrorKind::ShuttingDown,
                    "server shutting down; statement not executed — retry",
                    None,
                );
                while let Framing::Frame(_) = decode_frame(&mut buf, config.max_frame) {
                    write_frame(&mut writer, &payload)?;
                }
                writer.flush()?;
                return Ok(());
            }
        }
    }
}

/// Execute one gathered window in order, writing one response frame per
/// request frame. Returns `Ok(false)` when the connection must close
/// (request-level protocol violation, or shutdown drained the tail).
fn process_window(
    session: &Session,
    writer: &mut BufWriter<TcpStream>,
    frames: Vec<Vec<u8>>,
    shutdown: &AtomicBool,
) -> io::Result<bool> {
    // Decode the whole window first; a malformed request payload closes
    // the connection, but only after every earlier frame got its answer.
    let mut stmts: Vec<String> = Vec::with_capacity(frames.len());
    let mut violation: Option<String> = None;
    for payload in &frames {
        match decode_request(payload) {
            Ok(Request::Execute(text)) => stmts.push(text),
            Err(msg) => {
                violation = Some(msg);
                break;
            }
        }
    }
    session.database().note_frames_received(stmts.len() as u64);

    let mut i = 0;
    let mut drained = false;
    while i < stmts.len() {
        if shutdown.load(Ordering::Acquire) {
            // In-flight statements (everything before `i`) completed and
            // responded; the queued tail gets a retriable refusal.
            let payload = encode_error(
                WireErrorKind::ShuttingDown,
                "server shutting down; statement not executed — retry",
                None,
            );
            for _ in i..stmts.len() {
                write_frame(writer, &payload)?;
            }
            drained = true;
            break;
        }
        // Coalesce a maximal run of ≥ 2 consecutive INSERTs into one table.
        if let Some(table) = insert_target(&stmts[i]) {
            let mut j = i + 1;
            while j < stmts.len() && insert_target(&stmts[j]) == Some(table) {
                j += 1;
            }
            if j - i >= 2 {
                match session.execute_batch(stmts[i..j].iter().map(|s| s.as_str())) {
                    Ok(results) => {
                        session.database().note_pipelined_batch();
                        for r in &results {
                            write_frame(writer, &encode_result(r))?;
                        }
                    }
                    // A coalesced run fails as a unit — the same
                    // observable as one multi-row INSERT failing — so
                    // every frame of the run reports the error.
                    Err(e) => {
                        let payload = encode_statement_error(&e);
                        for _ in i..j {
                            write_frame(writer, &payload)?;
                        }
                    }
                }
                i = j;
                continue;
            }
        }
        match session.execute(&stmts[i]) {
            Ok(r) => write_frame(writer, &encode_result(&r))?,
            Err(e) => write_frame(writer, &encode_statement_error(&e))?,
        }
        i += 1;
    }

    if let Some(msg) = violation {
        session.database().note_frame_rejected();
        write_frame(writer, &encode_error(WireErrorKind::Protocol, &msg, None))?;
        writer.flush()?;
        return Ok(false);
    }
    writer.flush()?;
    Ok(!drained)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_target_sniffs_tables() {
        assert_eq!(insert_target("INSERT INTO t VALUES (1)"), Some("t"));
        assert_eq!(
            insert_target("insert into t2(a, b) values (1, 2)"),
            Some("t2")
        );
        assert_eq!(insert_target("  INSERT   INTO   t  VALUES (1)"), Some("t"));
        assert_eq!(insert_target("UPDATE t SET a = 1"), None);
        assert_eq!(insert_target("SELECT a FROM t"), None);
        assert_eq!(insert_target("INSERT"), None);
        assert_eq!(insert_target("INSERT INTO"), None);
    }
}
