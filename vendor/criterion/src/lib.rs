//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of criterion's API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] /
//! [`Bencher::iter_with_setup`], [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple: each benchmark runs
//! `sample_size` samples after one warm-up and reports the min / mean /
//! max per-iteration wall time, without outlier analysis, HTML reports,
//! or saved baselines.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export site of the benchmark entry points.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group_name = name.to_string();
        run_bench(&group_name, None, 20, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&self.name, Some(id.into()), self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&self.name, Some(id.into()), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (upstream flushes reports here; this prints nothing).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    group: &str,
    id: Option<BenchmarkId>,
    samples: usize,
    mut f: F,
) {
    let label = match &id {
        Some(id) => format!("{group}/{id}"),
        None => group.to_string(),
    };
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples + 1),
    };
    for _ in 0..samples + 1 {
        f(&mut bencher);
    }
    // Discard the warm-up sample.
    let timings = &bencher.samples[1.min(bencher.samples.len().saturating_sub(1))..];
    if timings.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let total: Duration = timings.iter().sum();
    let mean = total / timings.len() as u32;
    let min = timings.iter().min().expect("nonempty");
    let max = timings.iter().max().expect("nonempty");
    println!(
        "{label:<50} time: [{min:>12.3?} {mean:>12.3?} {max:>12.3?}]  ({} samples)",
        timings.len()
    );
}

/// Passed to benchmark closures; measures the timed section.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }

    /// Times `routine` on a fresh `setup()` product, excluding setup time.
    pub fn iter_with_setup<S, O, SF, F>(&mut self, mut setup: SF, mut routine: F)
    where
        SF: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.samples.push(start.elapsed());
    }
}

/// An identifier combining a function name and an input parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Creates an id like `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Creates an id with only a parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.parameter {
            Some(p) if !self.function.is_empty() => write!(f, "{}/{}", self.function, p),
            Some(p) => write!(f, "{p}"),
            None => write!(f, "{}", self.function),
        }
    }
}

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declares a benchmark group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
