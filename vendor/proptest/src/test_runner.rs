//! Test configuration and the deterministic RNG driving generation.

/// Mirror of `proptest::test_runner::Config`, reduced to the fields the
//  workspace uses. Construct with struct-update syntax:
/// `Config { cases: 64, ..Config::default() }`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases to run per property (default 256, overridable via
    /// the `PROPTEST_CASES` environment variable).
    pub cases: u32,
    /// RNG seed. `None` (the default) uses a fixed built-in seed, or
    /// `PROPTEST_SEED` when set — runs are deterministic either way.
    pub rng_seed: Option<u64>,
    /// Accepted for upstream compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        Config {
            cases,
            rng_seed: None,
            max_shrink_iters: 1024,
        }
    }
}

impl Config {
    /// The seed actually used: `PROPTEST_SEED` from the environment (the
    /// manual bug-hunting escape hatch), else the pinned field, else a
    /// fixed constant — deterministic unless the caller opts out.
    pub fn effective_seed(&self) -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .or(self.rng_seed)
            .unwrap_or(0x7161_726b_7874_7267) // "qarkxtrg"
    }
}

/// Deterministic generation RNG (SplitMix64-seeded xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn with_seed(mut state: u64) -> Self {
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample from an empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
