//! `any::<T>()` — default strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Returns the canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn new_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Any bit pattern, like upstream's full f64 domain: includes
        // subnormals, infinities and NaN.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text friendly to byte-based
        // parsers, matching how the workspace uses `any::<char>()`.
        char::from_u32(0x20 + (rng.next_u64() % 0x5f) as u32).expect("printable ASCII")
    }
}
