//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end.saturating_sub(self.size.start).max(1);
        let len = self.size.start + rng.below(span);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
