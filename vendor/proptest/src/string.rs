//! String generation from a regex subset: literal characters, character
//! classes (`[a-z0-9_]`, including the space-to-tilde range `[ -~]`), `.`,
//! and the quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (with `*`/`+` capped
//! at 8 repetitions).

use crate::test_runner::TestRng;

enum Atom {
    Literal(char),
    Class(Vec<char>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let n = if piece.min == piece.max {
            piece.min
        } else {
            piece.min + rng.below(piece.max - piece.min + 1)
        };
        for _ in 0..n {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(chars) => out.push(chars[rng.below(chars.len())]),
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in regex literal {pattern:?}"))
                    + i;
                let class = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                Atom::Class(class)
            }
            '.' => {
                i += 1;
                Atom::Class((' '..='~').collect())
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in regex literal {pattern:?}"));
                i += 1;
                match c {
                    'd' => Atom::Class(('0'..='9').collect()),
                    'w' => {
                        let mut class: Vec<char> = ('a'..='z').collect();
                        class.extend('A'..='Z');
                        class.extend('0'..='9');
                        class.push('_');
                        Atom::Class(class)
                    }
                    other => Atom::Literal(other),
                }
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in regex literal {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad lower repeat bound"),
                        hi.trim().parse().expect("bad upper repeat bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad repeat count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(
        body.first() != Some(&'^'),
        "negated classes are not supported (regex literal {pattern:?})"
    );
    let mut class = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted range in regex literal {pattern:?}");
            class.extend(lo..=hi);
            i += 3;
        } else {
            class.push(body[i]);
            i += 1;
        }
    }
    assert!(
        !class.is_empty(),
        "empty class in regex literal {pattern:?}"
    );
    class
}
