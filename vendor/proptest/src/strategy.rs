//! The [`Strategy`] trait and its combinators.

use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream this is generation-only: there is no value tree and no
/// shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Rejects generated values failing `pred`, retrying a bounded number
    /// of times.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for
    /// the current depth and returns one for a level above it. `depth`
    /// bounds recursion; `desired_size`/`expected_branch_size` are
    /// accepted for upstream compatibility but unused.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            // At each level, generation either stops with a leaf or
            // descends one level deeper.
            strat = Union::new(vec![self.clone().boxed(), recurse(strat).boxed()]).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    source: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.reason);
    }
}

/// Uniform choice among several strategies of the same value type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "Union requires at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].new_value(rng)
    }
}

/// A string literal is a strategy generating strings matching it as a
/// regex (character-class subset; see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128).wrapping_add(off) as $t
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn new_value(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($(ref $name,)+) = *self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);
