//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of `proptest` its property tests use:
//! the [`proptest!`] macro, the [`strategy::Strategy`] combinators
//! (`prop_map`, `prop_filter`, `prop_recursive`, `boxed`), regex-literal
//! string strategies over a character-class subset, tuple/range/vec
//! strategies, [`sample::select`], [`arbitrary::any`], and
//! [`test_runner::Config`].
//!
//! Semantic differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   `Debug`-printed; it is not minimized first.
//! * **Deterministic by default.** The RNG seed is fixed (overridable via
//!   `PROPTEST_SEED`), and the case count honors `PROPTEST_CASES`, so CI
//!   runs are reproducible without a `proptest-regressions/` directory.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the upstream form with an optional leading
/// `#![proptest_config(expr)]` item.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_case! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_case! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::with_seed(config.effective_seed());
            let strategies = ($($strat,)*);
            for case in 0..config.cases {
                let ($($arg,)*) = {
                    let ($(ref $arg,)*) = strategies;
                    ($($arg.new_value(&mut rng),)*)
                };
                let debugged = format!(
                    concat!("case ", "{}", $(concat!("\n  ", stringify!($arg), " = {:?}"),)*),
                    case, $(&$arg),*
                );
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || $body,
                ));
                if let Err(payload) = result {
                    eprintln!("proptest failure in {}: {}", stringify!($name), debugged);
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Uniformly picks one of several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod shim_tests {
    use std::cell::Cell;

    use crate::prelude::*;
    use crate::test_runner::TestRng;

    thread_local! {
        static RUNS: Cell<u32> = const { Cell::new(0) };
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 17, ..ProptestConfig::default() })]

        #[test]
        fn runs_exactly_cases_times(_x in 0..100i32) {
            RUNS.with(|r| r.set(r.get() + 1));
        }
    }

    #[test]
    fn macro_executes_the_configured_case_count() {
        RUNS.with(|r| r.set(0));
        runs_exactly_cases_times();
        assert_eq!(RUNS.with(Cell::get), 17);
    }

    #[test]
    fn regex_literals_generate_matching_strings() {
        let mut rng = TestRng::with_seed(7);
        for _ in 0..200 {
            let name = "[a-z][a-z0-9_]{0,8}".new_value(&mut rng);
            assert!((1..=9).contains(&name.len()), "bad length: {name:?}");
            let mut chars = name.chars();
            assert!(chars.next().expect("nonempty").is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));

            let printable = "[ -~]{1,12}".new_value(&mut rng);
            assert!((1..=12).contains(&printable.len()));
            assert!(printable.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn ranges_and_vec_stay_in_bounds() {
        let mut rng = TestRng::with_seed(11);
        let strat = crate::collection::vec(1.0..500.0f64, 0..12);
        let mut lens = std::collections::HashSet::new();
        for _ in 0..300 {
            let v = strat.new_value(&mut rng);
            assert!(v.len() < 12);
            lens.insert(v.len());
            assert!(v.iter().all(|x| (1.0..500.0).contains(x)));
        }
        assert!(
            lens.len() > 4,
            "length distribution is degenerate: {lens:?}"
        );
    }

    #[test]
    fn filter_recursion_and_union_cover_all_branches() {
        let mut rng = TestRng::with_seed(13);
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let seen: std::collections::HashSet<u8> =
            (0..100).map(|_| strat.new_value(&mut rng)).collect();
        assert_eq!(seen.len(), 3, "union never picked some branch");

        let even = (0..1000i32).prop_filter("even", |x| x % 2 == 0);
        for _ in 0..100 {
            assert_eq!(even.new_value(&mut rng) % 2, 0);
        }

        // Depth-bounded recursion: nested vec depth never exceeds the bound.
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] i32),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let tree = (0..10i32)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        for _ in 0..200 {
            assert!(depth(&tree.new_value(&mut rng)) <= 3 + 1);
        }
    }

    #[test]
    fn same_seed_reproduces_the_same_values() {
        let gen_some = |seed: u64| {
            let mut rng = TestRng::with_seed(seed);
            (0..50)
                .map(|_| "[a-z]{0,6}".new_value(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen_some(42), gen_some(42));
        assert_ne!(gen_some(42), gen_some(43));
    }
}
