//! Sampling strategies (`proptest::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniformly selects one of the given values.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len())].clone()
    }
}
