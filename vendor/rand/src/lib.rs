//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the narrow slice of `rand` 0.8 it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over the primitive integer/float ranges. The
//! generator is a SplitMix64-seeded xoshiro256++, which matches `rand`'s
//! statistical quality for benchmarking purposes (it is **not** a
//! cryptographic RNG, and neither is `StdRng` a drop-in bit-for-bit
//! replica of upstream's ChaCha-based one).

use std::ops::Range;

/// A random number generator core: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply rejection-free mapping; bias is < 2^-64
                // per draw, immaterial for workload generation.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32)
                .map(|_| rng.gen_range(0..1_000_000usize))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(0x5eed), draw(0x5eed));
        assert_ne!(draw(0x5eed), draw(0x5eee));
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 10, "all values of a small range should appear");

        for _ in 0..1000 {
            let f = rng.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(-50..-40i64);
            assert!((-50..-40).contains(&i));
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic general-purpose generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}
