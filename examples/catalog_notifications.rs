//! The §1 web-service scenario: a supplier exposes its catalog as an XML
//! view; buyers subscribe to events instead of polling.
//!
//! ```text
//! cargo run --example catalog_notifications
//! ```
//!
//! Three buyers place triggers: new-product announcements (INSERT),
//! out-of-stock alerts (DELETE — the product leaves the view when fewer
//! than two vendors carry it), and price-drop alerts (UPDATE with a
//! quantified condition).

use quark_core::relational::Value;
use quark_core::{Mode, Quark};
use quark_xquery::{create_trigger, register_view};

fn main() {
    let db = quark_core::xqgm::fixtures::product_vendor_db();
    let mut quark = Quark::new(db, Mode::GroupedAgg);
    register_view(
        &mut quark,
        r#"create view catalog as {
             <catalog>{
               for $prodname in distinct(view("default")/product/row/pname)
               let $products := view("default")/product/row[./pname = $prodname]
               let $vendors := view("default")/vendor/row[./pid = $products/pid]
               where count($vendors) >= 2
               return <product name={$prodname}>
                 { for $vendor in $vendors return <vendor>{$vendor/*}</vendor> }
               </product>
             }</catalog>
           }"#,
    )
    .expect("view");

    quark.register_action("announce", |_db, call| {
        let node = &call.params[0];
        println!("[announce]  new product listed: {node}");
        Ok(())
    });
    quark.register_action("restock", |_db, call| {
        println!(
            "[restock]   product no longer broadly available: {}",
            call.params[0]
        );
        Ok(())
    });
    quark.register_action("deal", |_db, call| {
        println!("[deal]      price drop spotted: {}", call.params[0]);
        Ok(())
    });

    create_trigger(
        &mut quark,
        "create trigger NewProducts after insert on view('catalog')/product \
         do announce(NEW_NODE)",
    )
    .expect("trigger");
    create_trigger(
        &mut quark,
        "create trigger OutOfMarket after delete on view('catalog')/product \
         do restock(OLD_NODE)",
    )
    .expect("trigger");
    create_trigger(
        &mut quark,
        "create trigger Deals after update on view('catalog')/product \
         where some $v in NEW_NODE/vendor satisfies ./price < 100 \
         do deal(NEW_NODE)",
    )
    .expect("trigger");

    println!("== A new product appears with two vendors ==");
    quark
        .db
        .insert(
            "product",
            vec![vec![
                Value::str("P9"),
                Value::str("OLED 42"),
                Value::str("LG"),
            ]],
        )
        .expect("insert");
    quark
        .db
        .insert(
            "vendor",
            vec![
                vec![Value::str("Amazon"), Value::str("P9"), Value::Double(899.0)],
                vec![
                    Value::str("Bestbuy"),
                    Value::str("P9"),
                    Value::Double(920.0),
                ],
            ],
        )
        .expect("insert");

    println!("\n== Amazon undercuts everyone on P1 ==");
    quark
        .db
        .update_by_key(
            "vendor",
            &[Value::str("Amazon"), Value::str("P1")],
            &[(2, Value::Double(89.0))],
        )
        .expect("update");

    println!("\n== LCD 19 drops to a single vendor ==");
    quark
        .db
        .delete_by_key("vendor", &[Value::str("Buy.com"), Value::str("P2")])
        .expect("delete");

    println!(
        "\n{} XML triggers -> {} SQL triggers across {} group(s).",
        quark.xml_trigger_count(),
        quark.sql_trigger_count(),
        quark.group_count(),
    );
}
