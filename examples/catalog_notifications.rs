//! The §1 web-service scenario: a supplier exposes its catalog as an XML
//! view; buyers subscribe to events instead of polling.
//!
//! ```text
//! cargo run --example catalog_notifications
//! ```
//!
//! Three buyers place triggers: new-product announcements (INSERT),
//! out-of-stock alerts (DELETE — the product leaves the view when fewer
//! than two vendors carry it), and price-drop alerts (UPDATE with a
//! quantified condition). The closing `MATERIALIZE` statement prints the
//! view the buyers end up seeing.

use quark_core::{Mode, StatementResult};

fn main() {
    let db = quark_core::xqgm::fixtures::product_vendor_db();
    let session = quark_xquery::session(db, Mode::GroupedAgg);
    session
        .execute(
            r#"create view catalog as {
                 <catalog>{
                   for $prodname in distinct(view("default")/product/row/pname)
                   let $products := view("default")/product/row[./pname = $prodname]
                   let $vendors := view("default")/vendor/row[./pid = $products/pid]
                   where count($vendors) >= 2
                   return <product name={$prodname}>
                     { for $vendor in $vendors return <vendor>{$vendor/*}</vendor> }
                   </product>
                 }</catalog>
               }"#,
        )
        .expect("view");

    session
        .register_action("announce", |_db, call| {
            println!("[announce]  new product listed: {}", call.params[0]);
            Ok(())
        })
        .expect("action");
    session
        .register_action("restock", |_db, call| {
            println!(
                "[restock]   product no longer broadly available: {}",
                call.params[0]
            );
            Ok(())
        })
        .expect("action");
    session
        .register_action("deal", |_db, call| {
            println!("[deal]      price drop spotted: {}", call.params[0]);
            Ok(())
        })
        .expect("action");

    for trigger in [
        "create trigger NewProducts after insert on view('catalog')/product \
         do announce(NEW_NODE)",
        "create trigger OutOfMarket after delete on view('catalog')/product \
         do restock(OLD_NODE)",
        "create trigger Deals after update on view('catalog')/product \
         where some $v in NEW_NODE/vendor satisfies ./price < 100 \
         do deal(NEW_NODE)",
    ] {
        session.execute(trigger).expect("trigger");
    }

    println!("== A new product appears with two vendors ==");
    session
        .execute("INSERT INTO product VALUES ('P9', 'OLED 42', 'LG')")
        .expect("insert");
    session
        .execute("INSERT INTO vendor VALUES ('Amazon', 'P9', 899.0), ('Bestbuy', 'P9', 920.0)")
        .expect("insert");

    println!("\n== Amazon undercuts everyone on P1 ==");
    session
        .execute("UPDATE vendor SET price = 89.0 WHERE vid = 'Amazon' AND pid = 'P1'")
        .expect("update");

    println!("\n== LCD 19 drops to a single vendor ==");
    session
        .execute("DELETE FROM vendor WHERE vid = 'Buy.com' AND pid = 'P2'")
        .expect("delete");

    println!(
        "\n{} XML triggers -> {} SQL triggers across {} group(s).",
        session.quark().xml_trigger_count(),
        session.quark().sql_trigger_count(),
        session.quark().group_count(),
    );

    println!("\n== The catalog as the buyers now see it ==");
    let StatementResult::Xml(nodes) = session
        .execute("MATERIALIZE view('catalog')/product")
        .expect("materialize")
    else {
        unreachable!("MATERIALIZE returns XML");
    };
    for node in nodes {
        println!("{}", node.to_pretty_xml());
    }
}
