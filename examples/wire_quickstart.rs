//! Wire quickstart: the running example served over TCP.
//!
//! ```text
//! cargo run --example wire_quickstart
//! ```
//!
//! Starts a `quark-server` over a session pool on an OS-assigned port,
//! then drives it with the blocking client: schema and trigger DDL, a
//! firing UPDATE, a typed SELECT, and a pipelined INSERT burst the server
//! coalesces into batched statements — all from "another process's" point
//! of view (only the action closure and the final stats peek run
//! in-process).

use quark_core::{Mode, SessionPool};
use quark_server::{Client, Server, ServerConfig, WireResult};

fn main() {
    // 1. The paper's fixture behind a session pool, served on a socket.
    let db = quark_core::xqgm::fixtures::product_vendor_db();
    let session = quark_xquery::session(db, Mode::GroupedAgg);
    session
        .register_action("notifySmith", |_db, call| {
            println!("--> notifySmith fired by `{}`:", call.trigger);
            println!("{}", call.params[0]);
            Ok(())
        })
        .expect("action registration");
    let server = Server::start(
        SessionPool::new(session),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("start server");
    println!("* serving on {}", server.addr());

    // 2. Everything below travels over TCP.
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .execute(
            r#"create view catalog as {
                 <catalog>{
                   for $prodname in distinct(view("default")/product/row/pname)
                   let $products := view("default")/product/row[./pname = $prodname]
                   let $vendors := view("default")/vendor/row[./pid = $products/pid]
                   where count($vendors) >= 2
                   return <product name={$prodname}>
                     { for $vendor in $vendors return <vendor>{$vendor/*}</vendor> }
                   </product>
                 }</catalog>
               }"#,
        )
        .expect("view definition");
    client
        .execute(
            r#"CREATE TRIGGER Notify AFTER Update
               ON view('catalog')/product
               WHERE OLD_NODE/@name = 'CRT 15'
               DO notifySmith(NEW_NODE)"#,
        )
        .expect("trigger definition");

    println!("* Amazon drops its P1 price to 75 over the wire:");
    client
        .execute("UPDATE vendor SET price = 75.0 WHERE vid = 'Amazon' AND pid = 'P1'")
        .expect("update");

    // 3. Typed results come back typed.
    let WireResult::Rows { columns, rows } = client
        .execute("SELECT vid, price FROM vendor WHERE pid = 'P1'")
        .expect("select")
    else {
        panic!("expected rows");
    };
    println!("* P1 vendors ({}):", columns.join(", "));
    for row in &rows {
        println!("    {row:?}");
    }

    // 4. A pipelined ingest burst: consecutive same-table INSERTs are
    //    coalesced server-side into batched statements.
    client
        .execute("CREATE TABLE intake (id INT PRIMARY KEY, note TEXT)")
        .expect("create intake");
    let stmts: Vec<String> = (0..64)
        .map(|i| format!("INSERT INTO intake VALUES ({i}, 'n{i}')"))
        .collect();
    let results = client
        .execute_pipelined(stmts.iter().map(|s| s.as_str()))
        .expect("pipelined ingest");
    assert!(results.iter().all(|r| r.is_ok()));
    println!("* pipelined {} inserts in one stream", results.len());

    // 5. The server counters show what the wire path did.
    let stats = server.session().database().stats();
    println!(
        "* server stats: frames_received={} pipelined_batches={} batched_statements={}",
        stats.frames_received, stats.pipelined_batches, stats.batched_statements
    );

    server.shutdown();
    println!("* drained and shut down cleanly");
}
