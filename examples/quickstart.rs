//! Quickstart: the paper's running example end to end, through the one
//! front door.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Opens a [`Session`](quark_core::Session) over the product/vendor
//! database (Fig. 2), defines the catalog view in XQuery (Fig. 3), places
//! the §2.2 `Notify` trigger on it, and runs a few SQL statements to show
//! when the trigger fires — every statement goes through
//! `session.execute(text)`.

use quark_core::Mode;

fn main() {
    // 1. A session over a relational database (the engine ships with the
    //    paper's Figure-2 fixture; any schema with primary keys works).
    let db = quark_core::xqgm::fixtures::product_vendor_db();
    let session = quark_xquery::session(db, Mode::GroupedAgg);

    // 2. An (unmaterialized!) XML view over it, straight from Figure 3.
    session
        .execute(
            r#"create view catalog as {
                 <catalog>{
                   for $prodname in distinct(view("default")/product/row/pname)
                   let $products := view("default")/product/row[./pname = $prodname]
                   let $vendors := view("default")/vendor/row[./pid = $products/pid]
                   where count($vendors) >= 2
                   return <product name={$prodname}>
                     { for $vendor in $vendors return <vendor>{$vendor/*}</vendor> }
                   </product>
                 }</catalog>
               }"#,
        )
        .expect("view definition");

    // 3. An action function and the §2.2 trigger.
    session
        .register_action("notifySmith", |_db, call| {
            println!("--> notifySmith fired by `{}`:", call.trigger);
            println!("{}", call.params[0]);
            Ok(())
        })
        .expect("action registration");
    session
        .execute(
            r#"CREATE TRIGGER Notify AFTER Update
               ON view('catalog')/product
               WHERE OLD_NODE/@name = 'CRT 15'
               DO notifySmith(NEW_NODE)"#,
        )
        .expect("trigger definition");

    // 4. SQL statements. Only changes that actually alter the monitored
    //    XML node fire the trigger.
    println!("* Amazon drops its P1 price to 75 (P1 is a 'CRT 15'):");
    session
        .execute("UPDATE vendor SET price = 75.0 WHERE vid = 'Amazon' AND pid = 'P1'")
        .expect("update");

    println!("\n* Buy.com reprices P2 ('LCD 19' — not watched): nothing fires.");
    session
        .execute("UPDATE vendor SET price = 190.0 WHERE vid = 'Buy.com' AND pid = 'P2'")
        .expect("update");

    println!("* Samsung renames its manufacturer entry (invisible in the view): nothing fires.");
    session
        .execute("UPDATE product SET mfr = 'Samsung Display' WHERE pid = 'P1'")
        .expect("update");

    println!(
        "\nDone. {} XML trigger(s) translated into {} SQL trigger(s).",
        session.quark().xml_trigger_count(),
        session.quark().sql_trigger_count()
    );
}
