//! Quickstart: the paper's running example end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Creates the product/vendor database (Fig. 2), defines the catalog view
//! in XQuery (Fig. 3), places the §2.2 `Notify` trigger on it, and runs a
//! few relational statements to show when the trigger fires.

use quark_core::relational::Value;
use quark_core::{Mode, Quark};
use quark_xquery::{create_trigger, register_view};

fn main() {
    // 1. A relational database (the engine ships with the paper's Figure-2
    //    fixture; any schema with primary keys works).
    let db = quark_core::xqgm::fixtures::product_vendor_db();
    let mut quark = Quark::new(db, Mode::GroupedAgg);

    // 2. An (unmaterialized!) XML view over it, straight from Figure 3.
    register_view(
        &mut quark,
        r#"create view catalog as {
             <catalog>{
               for $prodname in distinct(view("default")/product/row/pname)
               let $products := view("default")/product/row[./pname = $prodname]
               let $vendors := view("default")/vendor/row[./pid = $products/pid]
               where count($vendors) >= 2
               return <product name={$prodname}>
                 { for $vendor in $vendors return <vendor>{$vendor/*}</vendor> }
               </product>
             }</catalog>
           }"#,
    )
    .expect("view definition");

    // 3. An action function and the §2.2 trigger.
    quark.register_action("notifySmith", |_db, call| {
        println!("--> notifySmith fired by `{}`:", call.trigger);
        println!("{}", call.params[0]);
        Ok(())
    });
    create_trigger(
        &mut quark,
        r#"CREATE TRIGGER Notify AFTER Update
           ON view('catalog')/product
           WHERE OLD_NODE/@name = 'CRT 15'
           DO notifySmith(NEW_NODE)"#,
    )
    .expect("trigger definition");

    // 4. Relational statements. Only changes that actually alter the
    //    monitored XML node fire the trigger.
    println!("* Amazon drops its P1 price to 75 (P1 is a 'CRT 15'):");
    quark
        .db
        .update_by_key(
            "vendor",
            &[Value::str("Amazon"), Value::str("P1")],
            &[(2, Value::Double(75.0))],
        )
        .expect("update");

    println!("\n* Buy.com reprices P2 ('LCD 19' — not watched): nothing fires.");
    quark
        .db
        .update_by_key(
            "vendor",
            &[Value::str("Buy.com"), Value::str("P2")],
            &[(2, Value::Double(190.0))],
        )
        .expect("update");

    println!("* Samsung renames its manufacturer entry (invisible in the view): nothing fires.");
    quark
        .db
        .update_by_key(
            "product",
            &[Value::str("P1")],
            &[(2, Value::str("Samsung Display"))],
        )
        .expect("update");

    println!(
        "\nDone. {} XML trigger(s) translated into {} SQL trigger(s).",
        quark.xml_trigger_count(),
        quark.sql_trigger_count()
    );
}
