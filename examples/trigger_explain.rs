//! Peek inside the translation: prints the artifacts the paper's figures
//! show — the catalog XQGM (Fig. 5), the affected-keys graph (Figs. 9-11),
//! the generated trigger plan (the Fig. 16 analog), the sorted-outer-
//! union tagger at work, and the session-level `EXPLAIN TRIGGER`
//! statement over a live trigger.
//!
//! ```text
//! cargo run --example trigger_explain
//! ```

use quark_core::akgraph::{create_ak_graph, AkOptions, AkSide};
use quark_core::angraph::{build_affected, AnOptions, Needs, SideNeeds};
use quark_core::relational::{row, Value};
use quark_core::spec::XmlEvent;
use quark_core::tagger::{tag_rows, TagLevel, TaggerPlan};
use quark_core::xqgm::fixtures::{catalog_path_graph, product_vendor_db};
use quark_core::xqgm::{Graph, KeyedGraph};

fn main() {
    let db = product_vendor_db();

    // --- Figure 5: the catalog view as XQGM -------------------------
    let mut g = Graph::new();
    let (top, _) = catalog_path_graph(&mut g);
    println!("== Path graph for view('catalog')/product (Figure 5A) ==");
    println!("{}", g.explain(top, &db));

    let (mut kg, root) = KeyedGraph::normalize(&g, top, &db).expect("normalize");
    println!(
        "canonical key of the product level: columns {:?}\n",
        kg.key(root)
    );

    // --- Figures 9-11: the affected-keys graph for ΔVENDOR ----------
    let ak = create_ak_graph(
        &mut kg,
        root,
        "vendor",
        AkSide::Delta,
        AkOptions::default(),
        &db,
    )
    .expect("akgraph")
    .expect("vendor affects the view");
    println!("== G_Δkey for UPDATE on vendor (Figure 11) ==");
    println!("{}", kg.graph.explain(ak.op, &db));
    println!(
        "invariant join columns: path graph {:?} = affected keys {:?}\n",
        ak.cols_in_o, ak.cols_in_ak
    );

    // --- Figure 16 analog: the generated trigger body ----------------
    let mut pg = quark_core::PathGraph {
        kg,
        root,
        node_col: 1,
        attr_cols: std::collections::HashMap::from([("name".to_string(), 0)]),
    };
    let affected = build_affected(
        &mut pg,
        "vendor",
        XmlEvent::Update,
        Needs {
            old: SideNeeds { node: false },
            new: SideNeeds { node: true },
        },
        AnOptions::default(),
        &db,
    )
    .expect("angraph")
    .expect("plan");
    println!("== Generated trigger plan for (vendor, UPDATE) — the Fig. 16 analog ==");
    println!("{}", affected.plan.explain());
    println!("output layout: {:?}\n", affected.layout);

    // --- The constant-space tagger over sorted-outer-union rows ------
    println!("== Sorted-outer-union rows through the constant-space tagger ==");
    let plan = TaggerPlan {
        tag_col: 0,
        levels: vec![
            TagLevel {
                tag: 1,
                element: "product".into(),
                parent: None,
                attrs: vec![("name".into(), 1)],
                scalar_children: vec![],
            },
            TagLevel {
                tag: 2,
                element: "vendor".into(),
                parent: Some(0),
                attrs: vec![],
                scalar_children: vec![("vid".into(), 2), ("price".into(), 3)],
            },
        ],
    };
    let rows = vec![
        row([
            Value::Int(1),
            Value::str("CRT 15"),
            Value::Null,
            Value::Null,
        ]),
        row([
            Value::Int(2),
            Value::Null,
            Value::str("Amazon"),
            Value::Double(100.0),
        ]),
        row([
            Value::Int(2),
            Value::Null,
            Value::str("Bestbuy"),
            Value::Double(120.0),
        ]),
        row([
            Value::Int(1),
            Value::str("LCD 19"),
            Value::Null,
            Value::Null,
        ]),
        row([
            Value::Int(2),
            Value::Null,
            Value::str("Buy.com"),
            Value::Double(200.0),
        ]),
    ];
    for node in tag_rows(&plan, &rows).expect("tagger") {
        println!("{}", node.to_pretty_xml());
    }

    // --- EXPLAIN TRIGGER through the session front door ---------------
    let session = quark_xquery::session(product_vendor_db(), quark_core::Mode::Grouped);
    session
        .execute(
            r#"create view catalog as {
                 <catalog>{
                   for $prodname in distinct(view("default")/product/row/pname)
                   let $products := view("default")/product/row[./pname = $prodname]
                   let $vendors := view("default")/vendor/row[./pid = $products/pid]
                   where count($vendors) >= 2
                   return <product name={$prodname}>
                     { for $vendor in $vendors return <vendor>{$vendor/*}</vendor> }
                   </product>
                 }</catalog>
               }"#,
        )
        .expect("view");
    session
        .register_action("notify", |_, _| Ok(()))
        .expect("action");
    session
        .execute(
            "create trigger Notify after update on view('catalog')/product \
             where OLD_NODE/@name = 'CRT 15' do notify(NEW_NODE)",
        )
        .expect("trigger");
    println!("\n== EXPLAIN TRIGGER Notify (session statement) ==");
    match session.execute("EXPLAIN TRIGGER Notify").expect("explain") {
        quark_core::StatementResult::Explain(text) => println!("{text}"),
        other => unreachable!("EXPLAIN returns Explain, got {other:?}"),
    }
}
