//! A deeper hierarchy with trigger grouping: regions → customers → orders,
//! with many structurally similar triggers sharing one translation —
//! schema, data, view, triggers and updates all through
//! `session.execute(text)`.
//!
//! ```text
//! cargo run --example orders_monitor
//! ```

use quark_core::relational::Database;
use quark_core::{Mode, Session};

fn build_session() -> Session {
    let session = quark_xquery::session(Database::new(), Mode::GroupedAgg);
    for stmt in [
        "CREATE TABLE region (rid INT PRIMARY KEY, name TEXT)",
        "CREATE TABLE customer (cid INT PRIMARY KEY, rid INT, name TEXT)",
        "CREATE TABLE orders (oid INT PRIMARY KEY, cid INT, total DOUBLE)",
        "CREATE INDEX ON customer (rid)",
        "CREATE INDEX ON orders (cid)",
        "INSERT INTO region VALUES (1, 'north'), (2, 'south')",
        "INSERT INTO customer VALUES (10, 1, 'ada'), (11, 1, 'bob'), \
                                     (12, 2, 'cyd'), (13, 2, 'dee')",
    ] {
        session.execute(stmt).expect("setup statement");
    }
    let orders: Vec<String> = [
        (0, 10),
        (1, 10),
        (2, 11),
        (3, 11),
        (4, 12),
        (5, 12),
        (6, 13),
        (7, 13),
    ]
    .iter()
    .map(|(i, cid)| format!("({}, {cid}, {:?})", 100 + i, 50.0 + 10.0 * *i as f64))
    .collect();
    session
        .execute(&format!("INSERT INTO orders VALUES {}", orders.join(", ")))
        .expect("orders");
    session
}

fn main() {
    let session = build_session();
    session
        .execute(
            r#"create view sales as {
                 <sales>{
                   for $r in view("default")/region/row
                   let $custs := view("default")/customer/row[./rid = $r/rid]
                   where count($custs) >= 2
                   return <region name={$r/name}>
                     { for $c in $custs return <customer name={$c/name}>
                         { for $o in view("default")/orders/row[./cid = $c/cid]
                           return <order><oid>{$o/oid}</oid><total>{$o/total}</total></order> }
                       </customer> }
                   </region>
                 }</sales>
               }"#,
        )
        .expect("view");

    session
        .register_action("page_oncall", |_db, call| {
            println!("[page] {} -> {}", call.trigger, call.params[0]);
            Ok(())
        })
        .expect("action");

    // Forty structurally similar triggers (one per watched region name ×
    // 20 subscribers): one translation, one constants table.
    for i in 0..20 {
        for region in ["north", "south"] {
            session
                .execute(&format!(
                    "create trigger W_{region}_{i} after update on view('sales')/region \
                     where OLD_NODE/@name = '{region}' do page_oncall(NEW_NODE)"
                ))
                .expect("trigger");
        }
    }
    println!(
        "{} XML triggers -> {} SQL triggers in {} group(s)\n",
        session.quark().xml_trigger_count(),
        session.quark().sql_trigger_count(),
        session.quark().group_count()
    );

    println!("== one order total changes in the north region ==");
    println!("   (all 20 'north' subscribers fire; 'south' ones stay quiet)\n");
    session
        .execute("UPDATE orders SET total = 999.0 WHERE oid = 100")
        .expect("update");
}
