//! A deeper hierarchy with trigger grouping: regions → customers → orders,
//! with many structurally similar triggers sharing one translation.
//!
//! ```text
//! cargo run --example orders_monitor
//! ```

use quark_core::relational::{ColumnDef, ColumnType, Database, TableSchema, Value};
use quark_core::{Mode, Quark};
use quark_xquery::{create_trigger, register_view};

fn build_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "region",
            vec![
                ColumnDef::new("rid", ColumnType::Int),
                ColumnDef::new("name", ColumnType::Str),
            ],
            &["rid"],
        )
        .expect("schema"),
    )
    .expect("table");
    db.create_table(
        TableSchema::new(
            "customer",
            vec![
                ColumnDef::new("cid", ColumnType::Int),
                ColumnDef::new("rid", ColumnType::Int),
                ColumnDef::new("name", ColumnType::Str),
            ],
            &["cid"],
        )
        .expect("schema"),
    )
    .expect("table");
    db.create_table(
        TableSchema::new(
            "orders",
            vec![
                ColumnDef::new("oid", ColumnType::Int),
                ColumnDef::new("cid", ColumnType::Int),
                ColumnDef::new("total", ColumnType::Double),
            ],
            &["oid"],
        )
        .expect("schema"),
    )
    .expect("table");
    db.create_index("customer", "rid").expect("index");
    db.create_index("orders", "cid").expect("index");

    db.load(
        "region",
        vec![
            vec![Value::Int(1), Value::str("north")],
            vec![Value::Int(2), Value::str("south")],
        ],
    )
    .expect("load");
    db.load(
        "customer",
        vec![
            vec![Value::Int(10), Value::Int(1), Value::str("ada")],
            vec![Value::Int(11), Value::Int(1), Value::str("bob")],
            vec![Value::Int(12), Value::Int(2), Value::str("cyd")],
            vec![Value::Int(13), Value::Int(2), Value::str("dee")],
        ],
    )
    .expect("load");
    let mut orders = Vec::new();
    for (i, cid) in [
        (0, 10),
        (1, 10),
        (2, 11),
        (3, 11),
        (4, 12),
        (5, 12),
        (6, 13),
        (7, 13),
    ] {
        orders.push(vec![
            Value::Int(100 + i),
            Value::Int(cid),
            Value::Double(50.0 + 10.0 * i as f64),
        ]);
    }
    db.load("orders", orders).expect("load");
    db
}

fn main() {
    let mut quark = Quark::new(build_db(), Mode::GroupedAgg);
    register_view(
        &mut quark,
        r#"create view sales as {
             <sales>{
               for $r in view("default")/region/row
               let $custs := view("default")/customer/row[./rid = $r/rid]
               where count($custs) >= 2
               return <region name={$r/name}>
                 { for $c in $custs return <customer name={$c/name}>
                     { for $o in view("default")/orders/row[./cid = $c/cid]
                       return <order><oid>{$o/oid}</oid><total>{$o/total}</total></order> }
                   </customer> }
               </region>
             }</sales>
           }"#,
    )
    .expect("view");

    quark.register_action("page_oncall", |_db, call| {
        println!("[page] {} -> {}", call.trigger, call.params[0]);
        Ok(())
    });

    // Forty structurally similar triggers (one per watched region name ×
    // 20 subscribers): one translation, one constants table.
    for i in 0..20 {
        for region in ["north", "south"] {
            create_trigger(
                &mut quark,
                &format!(
                    "create trigger W_{region}_{i} after update on view('sales')/region \
                     where OLD_NODE/@name = '{region}' do page_oncall(NEW_NODE)"
                ),
            )
            .expect("trigger");
        }
    }
    println!(
        "{} XML triggers -> {} SQL triggers in {} group(s)\n",
        quark.xml_trigger_count(),
        quark.sql_trigger_count(),
        quark.group_count()
    );

    println!("== one order total changes in the north region ==");
    println!("   (all 20 'north' subscribers fire; 'south' ones stay quiet)\n");
    quark
        .db
        .update_by_key("orders", &[Value::Int(100)], &[(2, Value::Double(999.0))])
        .expect("update");
}
