//! `quark-xtrig`: integration package for the reproduction of
//! *"Triggers over XML Views of Relational Data"* (ICDE 2005).
//!
//! This crate re-exports the layered workspace members and owns the
//! end-to-end integration tests (`tests/`) and runnable `examples/`.
//! See the individual crates for the actual implementation:
//!
//! * [`quark_core`] — trigger translation (AK/AN graphs, grouping, pushdown)
//! * [`quark_xquery`] — XQuery / `CREATE TRIGGER` frontend
//! * [`quark_bench`] — workload generation and measurement harness

#![warn(missing_docs)]

pub use quark_bench as bench;
pub use quark_core as core;
pub use quark_xquery as xquery;
