//! End-to-end tests of the network front door (`quark-server`): typed
//! results over the wire, pipelined coalescing, differential equivalence
//! with in-process sessions, adversarial bytes, backpressure, admission
//! control, and graceful shutdown with durable recovery.
//!
//! The soak test (`#[ignore]`, run by the nightly workflow) drives mixed
//! read/write/malformed load for `SOAK_SECS` seconds and asserts zero
//! lost trigger firings plus a clean drain.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use quark_bench::{build_sharded, ShardSpec, ShardedWorkload};
use quark_core::relational::{Stats, Value};
use quark_core::storage::SyncMode;
use quark_core::{Mode, ObjectKind, Session, SessionPool};
use quark_server::protocol::{encode_request, write_frame};
use quark_server::{
    Client, ClientError, RetryPolicy, Server, ServerConfig, ServerHandle, WireErrorKind, WireResult,
};

// ---------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------

/// Start a server over a fresh sharded workload (see
/// [`quark_bench::build_sharded`]: shard `h` is table `m{h}` behind XML
/// view `shard{h}`, with 8 triggers on the hot row `id = 0` appending to
/// `audit{h}`).
fn sharded_server(shards: usize, config: ServerConfig) -> ServerHandle {
    let w = build_sharded(ShardSpec::quick(shards, Mode::Grouped)).expect("sharded workload");
    let pool = SessionPool::new(w.session);
    Server::start(pool, "127.0.0.1:0", config).expect("start server")
}

/// Same statement text the in-process benchmarks use, so wire runs and
/// in-process oracles replay identical streams.
fn update_stmt(shard: usize, seq: i64) -> String {
    let price = 50.0 + (seq % 1000) as f64 / 7.0;
    format!("UPDATE m{shard} SET price = {price:?} WHERE id = 0")
}

fn select_stmt(shard: usize, id: i64) -> String {
    format!("SELECT name FROM m{shard} WHERE id = {id}")
}

fn audit_rows(session: &Session, shard: usize) -> usize {
    session
        .database()
        .table(&format!("audit{shard}"))
        .map(|t| t.len())
        .unwrap_or(0)
}

fn stats(handle: &ServerHandle) -> Stats {
    handle.session().database().stats()
}

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("quark-wire-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One raw frame carrying an EXECUTE request, for tests that bypass the
/// client's call/response pacing.
fn raw_execute_frame(statement: &str) -> Vec<u8> {
    let mut out = Vec::new();
    write_frame(&mut out, &encode_request(statement)).expect("frame");
    out
}

// ---------------------------------------------------------------------
// Typed results and statement errors
// ---------------------------------------------------------------------

/// Every [`StatementResult`](quark_core::StatementResult) variant crosses
/// the wire typed: DDL as Created/Dropped, DML as RowsAffected, SELECT as
/// typed rows, EXPLAIN as text, MATERIALIZE as serialized XML.
#[test]
fn statement_results_round_trip_over_the_wire() {
    // The Figure-2/3 catalog fixture, built entirely over the wire.
    let session = quark_xquery::session(quark_core::relational::Database::new(), Mode::Grouped);
    session
        .register_action_with_writes("notify", Vec::<String>::new(), |_, _| Ok(()))
        .expect("action");
    let server = Server::start(
        SessionPool::new(session),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("start server");
    let mut client = Client::connect(server.addr()).expect("connect");

    let created = client
        .execute("CREATE TABLE product (pid TEXT PRIMARY KEY, pname TEXT, mfr TEXT)")
        .expect("create");
    assert_eq!(
        created,
        WireResult::Created {
            kind: ObjectKind::Table,
            name: "product".into()
        }
    );
    client
        .execute("CREATE TABLE vendor (vid TEXT, pid TEXT, price DOUBLE, PRIMARY KEY (vid, pid))")
        .expect("create vendor");

    let inserted = client
        .execute(
            "INSERT INTO product VALUES ('P1', 'CRT 15', 'Samsung'), \
             ('P2', 'LCD 19', 'LG'), ('P3', 'OLED 42', 'LG')",
        )
        .expect("insert");
    assert_eq!(inserted, WireResult::RowsAffected(3));
    client
        .execute(
            "INSERT INTO vendor VALUES ('Amazon', 'P1', 100.0), \
             ('Bestbuy', 'P1', 120.0), ('Amazon', 'P2', 250.0)",
        )
        .expect("insert vendors");

    let WireResult::Rows { columns, rows } = client
        .execute("SELECT pid, price FROM vendor WHERE vid = 'Amazon'")
        .expect("select")
    else {
        panic!("expected rows");
    };
    assert_eq!(columns, vec!["pid".to_string(), "price".to_string()]);
    assert_eq!(
        rows,
        vec![
            quark_core::relational::row([Value::str("P1"), Value::Double(100.0)]),
            quark_core::relational::row([Value::str("P2"), Value::Double(250.0)]),
        ]
    );

    client
        .execute(
            r#"create view catalog as {
              <catalog>{
                for $prodname in distinct(view("default")/product/row/pname)
                let $products := view("default")/product/row[./pname = $prodname]
                let $vendors := view("default")/vendor/row[./pid = $products/pid]
                where count($vendors) >= 2
                return <product name={$prodname}>
                  { for $vendor in $vendors return <vendor>{$vendor/*}</vendor> }
                </product>
              }</catalog>
            }"#,
        )
        .expect("create view");
    let trig = client
        .execute(
            "CREATE TRIGGER NotifyP1 AFTER Update ON view('catalog')/product \
             WHERE OLD_NODE/@name = 'CRT 15' DO notify(NEW_NODE)",
        )
        .expect("create trigger");
    assert_eq!(
        trig,
        WireResult::Created {
            kind: ObjectKind::Trigger,
            name: "NotifyP1".into()
        }
    );

    let WireResult::Explain(plan) = client.execute("EXPLAIN TRIGGER NotifyP1").expect("explain")
    else {
        panic!("expected explain text");
    };
    assert!(!plan.is_empty());

    let WireResult::Xml(nodes) = client
        .execute("MATERIALIZE view('catalog')/product")
        .expect("materialize")
    else {
        panic!("expected XML");
    };
    assert_eq!(nodes.len(), 1, "only CRT 15 has two vendors");
    assert!(nodes[0].contains("CRT 15"));

    let dropped = client.execute("DROP TRIGGER NotifyP1").expect("drop");
    assert_eq!(
        dropped,
        WireResult::Dropped {
            kind: ObjectKind::Trigger,
            name: "NotifyP1".into()
        }
    );

    server.shutdown();
}

/// Parse and engine errors come back as error frames — with the parse
/// span intact — and leave the connection usable.
#[test]
fn statement_errors_keep_the_connection_usable() {
    let server = sharded_server(1, ServerConfig::default());
    let mut client = Client::connect(server.addr()).expect("connect");

    let text = "SELEKT name FROM m0";
    match client.execute(text) {
        Err(ClientError::Remote(e)) => {
            assert_eq!(e.kind, WireErrorKind::Parse);
            assert!(!e.kind.is_retriable());
            let span = e.span.expect("parse errors carry a span");
            assert!(span.end <= text.len(), "span points into the statement");
        }
        other => panic!("expected remote parse error, got {other:?}"),
    }

    match client.execute("SELECT name FROM no_such_table WHERE id = 0") {
        Err(ClientError::Remote(e)) => assert_eq!(e.kind, WireErrorKind::Db),
        other => panic!("expected remote db error, got {other:?}"),
    }

    // Same connection still executes fine after both failures.
    let ok = client.execute(&select_stmt(0, 0)).expect("still usable");
    assert!(matches!(ok, WireResult::Rows { .. }));
    server.shutdown();
}

// ---------------------------------------------------------------------
// Concurrency: differential equivalence and lost-firing checks
// ---------------------------------------------------------------------

/// k wire clients writing pairwise-disjoint shards concurrently leave the
/// system in exactly the state an in-process single-threaded replay of
/// the same statements produces — triggers, cascades and audit rows
/// included.
#[test]
fn concurrent_disjoint_wire_writers_match_in_process_replay() {
    const CLIENTS: usize = 4;
    const OPS: i64 = 40;

    let server = sharded_server(CLIENTS, ServerConfig::default());
    let addr = server.addr();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|t| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..OPS {
                    let n = client
                        .execute(&update_stmt(t, i))
                        .expect("wire update")
                        .rows_affected()
                        .expect("update reports rows");
                    assert_eq!(n, 1, "keyed update touches the hot row");
                    client.execute(&select_stmt(t, i % 256)).expect("wire read");
                }
            })
        })
        .collect();
    for th in threads {
        th.join().expect("client thread");
    }

    // Single-threaded in-process oracle over the identical statement text.
    let ShardedWorkload {
        session: oracle, ..
    } = build_sharded(ShardSpec::quick(CLIENTS, Mode::Grouped)).expect("oracle workload");
    for t in 0..CLIENTS {
        for i in 0..OPS {
            oracle.execute(&update_stmt(t, i)).expect("oracle update");
            oracle
                .execute(&select_stmt(t, i % 256))
                .expect("oracle read");
        }
    }

    let wire = server.shutdown().into_session();
    for t in 0..CLIENTS {
        assert_eq!(
            audit_rows(&wire, t),
            audit_rows(&oracle, t),
            "shard {t}: audit-table cardinality differs from the oracle"
        );
        for stmt in [
            format!("SELECT * FROM m{t} WHERE id = 0"),
            format!("SELECT * FROM audit{t}"),
        ] {
            let a = format!("{:?}", wire.execute(&stmt).expect("wire dump"));
            let b = format!("{:?}", oracle.execute(&stmt).expect("oracle dump"));
            assert_eq!(a, b, "shard {t}: {stmt} differs from the oracle");
        }
    }
}

/// k wire clients hammering the *same* shard serialize on its latches but
/// lose nothing: every successful update fired all 8 watching triggers.
#[test]
fn overlapping_wire_writers_lose_no_firings() {
    const CLIENTS: usize = 4;
    const OPS: i64 = 30;
    const TRIGGERS: usize = 8; // ShardSpec::quick

    let server = sharded_server(1, ServerConfig::default());
    let addr = server.addr();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|t| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..OPS {
                    // Distinct seq per (client, op): every update really
                    // changes the price. A no-op write produces no delta
                    // and hence (correctly) no firing, which is not what
                    // this test is about.
                    let seq = t as i64 * OPS + i;
                    client.execute(&update_stmt(0, seq)).expect("wire update");
                }
            })
        })
        .collect();
    for th in threads {
        th.join().expect("client thread");
    }

    let session = server.shutdown().into_session();
    assert_eq!(
        audit_rows(&session, 0),
        CLIENTS * OPS as usize * TRIGGERS,
        "every update must fire every watching trigger exactly once"
    );
}

// ---------------------------------------------------------------------
// Pipelining, backpressure, admission control
// ---------------------------------------------------------------------

/// Consecutive same-table INSERTs streamed down one connection coalesce
/// server-side into batched statements (one transition table, one
/// cascade), observable in the engine counters; interleaving a second
/// table breaks the runs.
#[test]
fn pipelined_inserts_coalesce_into_batched_statements() {
    const ROWS: usize = 100;
    let server = sharded_server(1, ServerConfig::default());
    let before = stats(&server);
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .execute("CREATE TABLE ingest (id INT PRIMARY KEY, payload TEXT)")
        .expect("create");

    // One burst write: all frames land in the server's receive buffer
    // together, so the gather loop sees long same-table runs.
    let mut burst = Vec::new();
    for i in 0..ROWS {
        burst.extend_from_slice(&raw_execute_frame(&format!(
            "INSERT INTO ingest VALUES ({i}, 'p{i}')"
        )));
    }
    client.send_raw(&burst).expect("burst");
    for i in 0..ROWS {
        // Responses arrive positionally, one per frame, all successful.
        let r = client.read_response().expect("burst response");
        assert_eq!(
            r.expect("insert succeeds").rows_affected(),
            Some(1),
            "insert {i}"
        );
    }

    let WireResult::Rows { rows, .. } =
        client.execute("SELECT id FROM ingest").expect("count rows")
    else {
        panic!("expected rows");
    };
    assert_eq!(rows.len(), ROWS, "every pipelined insert applied once");

    let after = stats(&server);
    assert!(
        after.pipelined_batches > before.pipelined_batches,
        "coalescing must engage: {} -> {}",
        before.pipelined_batches,
        after.pipelined_batches
    );
    assert!(
        after.batched_statements >= before.batched_statements + 2,
        "coalesced runs execute as batches"
    );
    assert!(
        after.frames_received >= before.frames_received + ROWS as u64,
        "every request frame is counted"
    );
    server.shutdown();
}

/// When the client streams faster than statements execute, the pipeline
/// window fills and the server deliberately stops reading the socket
/// (counted), instead of buffering without bound. Nothing is lost.
#[test]
fn backpressure_stalls_when_the_pipeline_window_fills() {
    let server = sharded_server(
        1,
        ServerConfig {
            workers: 1,
            max_pipeline: 2,
            ..ServerConfig::default()
        },
    );
    let before = stats(&server);
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .execute("CREATE TABLE bp (id INT PRIMARY KEY)")
        .expect("create");

    const N: usize = 40;
    let mut burst = Vec::new();
    for i in 0..N {
        burst.extend_from_slice(&raw_execute_frame(&format!("INSERT INTO bp VALUES ({i})")));
    }
    client.send_raw(&burst).expect("burst");
    for i in 0..N {
        let r = client.read_response().expect("burst response");
        assert!(r.is_ok(), "insert {i} against the stalled window: {r:?}");
    }
    let WireResult::Rows { rows, .. } = client.execute("SELECT id FROM bp").expect("after burst")
    else {
        panic!("expected rows");
    };
    assert_eq!(rows.len(), N, "backpressure must not drop statements");
    let after = stats(&server);
    assert!(
        after.backpressure_stalls > before.backpressure_stalls,
        "a 40-frame burst against a 2-frame window must stall"
    );
    server.shutdown();
}

/// With every worker busy and the handoff queue full, a further
/// connection is answered with one retriable `Busy` frame and closed —
/// never silently dropped, never unboundedly queued.
#[test]
fn busy_rejection_when_the_accept_queue_overflows() {
    let server = sharded_server(
        1,
        ServerConfig {
            workers: 1,
            accept_queue: 1,
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();

    // Occupy the single worker…
    let mut held = Client::connect(addr).expect("connect A");
    held.execute(&select_stmt(0, 0)).expect("A served");
    // …fill the single queue slot… (no traffic needed; queued at accept)
    let _queued = TcpStream::connect(addr).expect("connect B");
    thread::sleep(Duration::from_millis(100)); // let the listener accept B

    // …and the third connection must be busy-rejected.
    let rejected = Client::connect(addr).expect("connect C");
    let responses = rejected.drain_until_close();
    assert_eq!(responses.len(), 1, "exactly one frame before the close");
    match &responses[0] {
        Err(e) => {
            assert_eq!(e.kind, WireErrorKind::Busy);
            assert!(e.kind.is_retriable());
        }
        other => panic!("expected busy rejection, got {other:?}"),
    }

    // The held connection is unaffected.
    held.execute(&select_stmt(0, 1)).expect("A still served");
    server.shutdown();
}

/// [`Client::execute_with_retry`] rides out a `Busy` rejection: while the
/// lone worker is pinned and the accept queue is full, the helper keeps
/// redialing with bounded backoff; once capacity frees up, the statement
/// lands and the returned connection stays usable.
#[test]
fn execute_with_retry_survives_busy_rejection() {
    let server = sharded_server(
        1,
        ServerConfig {
            workers: 1,
            accept_queue: 1,
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();

    // Pin the worker and fill the queue slot, as in the rejection test.
    let mut held = Client::connect(addr).expect("connect A");
    held.execute(&select_stmt(0, 0)).expect("A served");
    let queued = TcpStream::connect(addr).expect("connect B");
    thread::sleep(Duration::from_millis(100)); // let the listener accept B

    let stmt = select_stmt(0, 2);
    let retrier = thread::spawn(move || {
        Client::execute_with_retry(
            addr,
            &stmt,
            RetryPolicy {
                attempts: 40,
                base_delay: Duration::from_millis(5),
                max_delay: Duration::from_millis(50),
            },
        )
    });

    // Give the retrier time to collect at least one Busy frame, then free
    // the worker so a later attempt can be admitted.
    thread::sleep(Duration::from_millis(150));
    drop(held);
    drop(queued);

    let (mut client, result) = retrier
        .join()
        .expect("retry thread")
        .expect("retry must eventually be admitted");
    match result {
        WireResult::Rows { rows, .. } => assert_eq!(rows.len(), 1),
        other => panic!("expected rows, got {other:?}"),
    }
    // The connection returned by the helper is live.
    client.execute(&select_stmt(0, 3)).expect("follow-up");
    let s = stats(&server);
    assert!(
        s.frames_rejected >= 1,
        "the retrier must have absorbed at least one Busy frame: {s:?}"
    );
    server.shutdown();
}

// ---------------------------------------------------------------------
// Adversarial bytes
// ---------------------------------------------------------------------

/// Torn, corrupt, oversized and nonsense frames are answered (where a
/// response is possible) with a `Protocol` error and a close — never a
/// panic, never a hang, and never damage to other connections.
#[test]
fn adversarial_bytes_never_panic_or_hang_the_server() {
    let server = sharded_server(1, ServerConfig::default());
    let addr = server.addr();
    let before = stats(&server);

    // (a) CRC corruption: flip one payload bit of a valid frame.
    let mut corrupt = raw_execute_frame(&select_stmt(0, 0));
    *corrupt.last_mut().unwrap() ^= 0x20;
    let mut client = Client::connect(addr).expect("connect");
    client.send_raw(&corrupt).expect("send corrupt");
    let responses = client.drain_until_close();
    assert_eq!(responses.len(), 1);
    assert!(
        matches!(&responses[0], Err(e) if e.kind == WireErrorKind::Protocol),
        "CRC mismatch must be reported as a protocol error: {responses:?}"
    );

    // (b) Oversized length header: rejected before any buffering.
    let mut client = Client::connect(addr).expect("connect");
    let mut oversized = (u32::MAX).to_le_bytes().to_vec();
    oversized.extend_from_slice(&[0u8; 4]);
    client.send_raw(&oversized).expect("send oversized");
    let responses = client.drain_until_close();
    assert!(
        matches!(&responses[..], [Err(e)] if e.kind == WireErrorKind::Protocol),
        "oversized frame must be rejected: {responses:?}"
    );

    // (c) Unknown request tag inside a well-framed payload: earlier valid
    // frames in the same burst are answered first.
    let mut client = Client::connect(addr).expect("connect");
    let mut burst = raw_execute_frame(&select_stmt(0, 1));
    write_frame(&mut burst, &[0x7f, 0x00]).expect("bogus frame");
    client.send_raw(&burst).expect("send mixed burst");
    let responses = client.drain_until_close();
    assert_eq!(responses.len(), 2, "valid frame answered before the error");
    assert!(matches!(&responses[0], Ok(WireResult::Rows { .. })));
    assert!(matches!(&responses[1], Err(e) if e.kind == WireErrorKind::Protocol));

    // (d) Torn frame: half a header, then half-close. The server must
    // notice EOF mid-frame and close without hanging.
    let stream = TcpStream::connect(addr).expect("connect raw");
    (&stream).write_all(&[0x10, 0x00]).expect("half header");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut rest = Vec::new();
    (&stream)
        .read_to_end(&mut rest)
        .expect("server closes the torn connection");

    // Every violation was counted, and the server still serves.
    let after = stats(&server);
    assert!(
        after.frames_rejected >= before.frames_rejected + 4,
        "all four violations counted: {} -> {}",
        before.frames_rejected,
        after.frames_rejected
    );
    let mut client = Client::connect(addr).expect("connect after abuse");
    client.execute(&select_stmt(0, 0)).expect("still serving");
    server.shutdown();
}

// ---------------------------------------------------------------------
// Graceful shutdown and durable recovery
// ---------------------------------------------------------------------

/// Shutdown during a pipelined stream: the in-flight statement completes
/// and commits, every queued frame is answered with a retriable
/// `ShuttingDown` error, the WAL closes at a statement boundary, and a
/// warm restart recovers exactly the successful prefix with zero
/// re-translations.
#[test]
fn graceful_shutdown_drains_in_flight_and_restarts_cleanly() {
    let dir = tmp_dir("shutdown");
    let session =
        quark_xquery::open_session_with(&dir, Mode::Grouped, SyncMode::Always).expect("open");
    for s in [
        "CREATE TABLE product (pid TEXT PRIMARY KEY, pname TEXT, mfr TEXT)",
        "CREATE TABLE vendor (vid TEXT, pid TEXT, price DOUBLE, PRIMARY KEY (vid, pid))",
        "INSERT INTO product VALUES ('P1', 'CRT 15', 'Samsung'), ('P2', 'LCD 19', 'LG')",
        "INSERT INTO vendor VALUES ('Amazon', 'P1', 100.0), ('Bestbuy', 'P1', 120.0)",
        r#"create view catalog as {
          <catalog>{
            for $prodname in distinct(view("default")/product/row/pname)
            let $products := view("default")/product/row[./pname = $prodname]
            let $vendors := view("default")/vendor/row[./pid = $products/pid]
            where count($vendors) >= 2
            return <product name={$prodname}>
              { for $vendor in $vendors return <vendor>{$vendor/*}</vendor> }
            </product>
          }</catalog>
        }"#,
    ] {
        session.execute(s).expect("setup");
    }
    // The `notify` action gates the first firing: it parks the executing
    // statement until the test has started the shutdown, making "shutdown
    // arrives while a statement is in flight" deterministic.
    let (entered_tx, entered_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let gate = Arc::new(Mutex::new(Some((entered_tx, release_rx))));
    session
        .register_action_with_writes("notify", Vec::<String>::new(), move |_, _| {
            if let Some((tx, rx)) = gate.lock().unwrap().take() {
                let _ = tx.send(());
                let _ = rx.recv();
            }
            Ok(())
        })
        .expect("action");
    session
        .execute(
            "CREATE TRIGGER NotifyP1 AFTER Update ON view('catalog')/product \
             WHERE OLD_NODE/@name = 'CRT 15' DO notify(NEW_NODE)",
        )
        .expect("trigger");
    assert!(
        session.quark().translations() > 0,
        "cold install translates"
    );

    let server = Server::start(
        SessionPool::new(session),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("start server");

    // One burst: a trigger-firing UPDATE (which will park in the gate)
    // followed by alternating-table INSERTs — alternation defeats
    // coalescing, so the tail is executed (or drained) per statement.
    let mut burst =
        raw_execute_frame("UPDATE vendor SET price = 150.0 WHERE vid = 'Amazon' AND pid = 'P1'");
    let mut tail = Vec::new();
    for i in 0..8 {
        let stmt = if i % 2 == 0 {
            format!("INSERT INTO product VALUES ('X{i}', 'N{i}', 'M')")
        } else {
            format!("INSERT INTO vendor VALUES ('V{i}', 'P2', 10.0)")
        };
        tail.push(stmt.clone());
        burst.extend_from_slice(&raw_execute_frame(&stmt));
    }
    let mut client = Client::connect(server.addr()).expect("connect");
    client.send_raw(&burst).expect("send burst");

    entered_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("the UPDATE must reach the gated trigger action");
    // Statement 1 is now provably in flight. Start the shutdown, give the
    // flag a moment to land, then let the statement finish.
    let shutdown_thread = thread::spawn(move || server.shutdown());
    thread::sleep(Duration::from_millis(200));
    release_tx.send(()).expect("release the gate");
    let pool = shutdown_thread.join().expect("shutdown");

    // The client saw: the in-flight UPDATE's success, then only retriable
    // ShuttingDown refusals (successes form a strict prefix).
    let responses = client.drain_until_close();
    assert!(!responses.is_empty(), "at least the UPDATE is answered");
    assert!(
        matches!(&responses[0], Ok(WireResult::RowsAffected(1))),
        "the in-flight statement completes: {:?}",
        responses[0]
    );
    let successes: Vec<usize> = responses
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.is_ok().then_some(i))
        .collect();
    assert_eq!(
        successes,
        (0..successes.len()).collect::<Vec<_>>(),
        "successes must form a prefix of the pipeline"
    );
    for r in &responses[successes.len()..] {
        match r {
            Err(e) => assert!(
                e.kind == WireErrorKind::ShuttingDown && e.kind.is_retriable(),
                "drained tail must be retriable: {e:?}"
            ),
            ok => panic!("non-prefix success: {ok:?}"),
        }
    }
    let applied_tail = successes.len().saturating_sub(1);

    // Clean close at a statement boundary, then warm restart: zero
    // re-translations, and exactly the successful prefix is durable.
    pool.into_session().close().expect("close");
    let session =
        quark_xquery::open_session_with(&dir, Mode::Grouped, SyncMode::Always).expect("reopen");
    assert_eq!(
        session.quark().translations(),
        0,
        "warm restart must not re-translate"
    );
    let count = |table: &str| {
        session
            .database()
            .table(table)
            .map(|t| t.len())
            .unwrap_or(0)
    };
    let expected_products = 2 + tail[..applied_tail]
        .iter()
        .filter(|s| s.contains("product"))
        .count();
    let expected_vendors = 2 + tail[..applied_tail]
        .iter()
        .filter(|s| s.contains("vendor"))
        .count();
    assert_eq!(
        count("product"),
        expected_products,
        "recovered product rows"
    );
    assert_eq!(count("vendor"), expected_vendors, "recovered vendor rows");
    let price = session
        .database()
        .table("vendor")
        .unwrap()
        .get(&[Value::str("Amazon"), Value::str("P1")])
        .map(|r| r[2].clone());
    assert_eq!(
        price,
        Some(Value::Double(150.0)),
        "the in-flight UPDATE committed before the WAL closed"
    );
    session.close().expect("final close");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Soak (nightly)
// ---------------------------------------------------------------------

/// Mixed read/write load plus a malformed-frame injector for `SOAK_SECS`
/// seconds (default 3): zero lost trigger firings, every injector
/// connection individually closed, clean drain at the end. The nightly
/// workflow runs this with a multi-minute budget.
#[test]
#[ignore = "long-running; exercised by the nightly soak job"]
fn soak_mixed_load_with_malformed_frames() {
    const WRITERS: usize = 2;
    const TRIGGERS: usize = 8; // ShardSpec::quick
    let secs: u64 = std::env::var("SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let deadline = Instant::now() + Duration::from_secs(secs);

    let server = sharded_server(
        WRITERS + 1,
        ServerConfig {
            workers: 8,
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();

    // Writers: counted keyed updates, each firing the shard's 8 triggers.
    let writer_threads: Vec<_> = (0..WRITERS)
        .map(|t| {
            thread::spawn(move || {
                let mut done = 0usize;
                let mut client = Client::connect(addr).expect("writer connect");
                while Instant::now() < deadline {
                    client
                        .execute(&update_stmt(t, done as i64))
                        .expect("soak update");
                    done += 1;
                }
                done
            })
        })
        .collect();

    // Reader: keyed selects on its own shard, plus periodic pipelined
    // ingest bursts into a private table.
    let reader = thread::spawn(move || {
        let shard = WRITERS;
        let mut client = Client::connect(addr).expect("reader connect");
        client
            .execute("CREATE TABLE soak_ingest (id INT PRIMARY KEY)")
            .expect("ingest table");
        let mut i = 0i64;
        let mut next_id = 0usize;
        while Instant::now() < deadline {
            client
                .execute(&select_stmt(shard, i % 256))
                .expect("soak read");
            if i % 50 == 0 {
                let stmts: Vec<String> = (0..32)
                    .map(|k| format!("INSERT INTO soak_ingest VALUES ({})", next_id + k))
                    .collect();
                next_id += 32;
                for r in client
                    .execute_pipelined(stmts.iter().map(|s| s.as_str()))
                    .expect("soak ingest")
                {
                    r.expect("soak insert");
                }
            }
            i += 1;
        }
        next_id
    });

    // Injector: malformed bytes on fresh raw connections, forever. Every
    // connection must come back closed (read_to_end returns), and the
    // server must keep serving everyone else.
    let injector = thread::spawn(move || {
        let mut attempts = 0usize;
        while Instant::now() < deadline {
            let stream = match TcpStream::connect(addr) {
                Ok(s) => s,
                Err(_) => continue, // accept queue momentarily full
            };
            let garbage: &[u8] = match attempts % 3 {
                0 => &[0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4], // oversized header
                1 => &[5, 0, 0, 0, 0, 0, 0, 0, 9, 9, 9, 9, 9], // CRC mismatch
                _ => &[2, 0, 0, 0],                         // torn header, then close
            };
            let _ = (&stream).write_all(garbage);
            // Half-close so torn frames terminate server-side on EOF; the
            // server must then close its half too, within the timeout.
            let _ = stream.shutdown(std::net::Shutdown::Write);
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .expect("injector timeout");
            let mut rest = Vec::new();
            (&stream)
                .read_to_end(&mut rest)
                .expect("server closes every abused connection");
            attempts += 1;
            thread::sleep(Duration::from_millis(5));
        }
        attempts
    });

    let updates: Vec<usize> = writer_threads
        .into_iter()
        .map(|t| t.join().expect("writer"))
        .collect();
    let ingested = reader.join().expect("reader");
    let attempts = injector.join().expect("injector");
    assert!(updates.iter().all(|&u| u > 0), "writers made progress");
    assert!(attempts > 0, "injector made progress");

    let session = server.shutdown().into_session();
    for (t, &done) in updates.iter().enumerate() {
        assert_eq!(
            audit_rows(&session, t),
            done * TRIGGERS,
            "shard {t}: zero lost firings across {done} updates"
        );
    }
    assert_eq!(
        session
            .database()
            .table("soak_ingest")
            .map(|t| t.len())
            .unwrap_or(0),
        ingested,
        "every acknowledged pipelined insert landed exactly once"
    );
    println!(
        "soak: {secs}s, updates={updates:?}, ingested={ingested}, injector_attempts={attempts}"
    );
}
