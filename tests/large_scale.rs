//! Large-cardinality correctness and O(affected) firing.
//!
//! The committed figure sweeps demonstrate *flat* per-firing latency as the
//! base tables grow; this suite pins the same property down semantically:
//!
//! * a ≥10k-row base table behaves byte-identically to the
//!   materialize-and-diff oracle in every translation mode,
//! * a firing at that scale performs index probes, not scans — asserted on
//!   the executor's `rows_scanned`/`index_probes` counters rather than
//!   inferred from wall-clock time,
//! * ordered storage and the cross-firing executor cache change nothing
//!   observable: a caching session and an uncached one produce identical
//!   statement results and identical firing sequences (proptest).

mod common;

use std::collections::BTreeSet;

use common::{catalog_path, Log};
use proptest::prelude::*;
use quark_core::oracle::changes_of;
use quark_core::relational::{sql, Database, Error, Value};
use quark_core::xqgm::fixtures::product_vendor_db;
use quark_core::{Mode, Quark, Session, XmlEvent, XmlView};
use quark_xquery::XQueryFrontend;

/// `(event, key, old serialization, new serialization)`.
type Observed = (String, String, String, String);

const LARGE_PRODUCTS: usize = 10_000;

/// The Figure-2 catalog database scaled to `LARGE_PRODUCTS` products with
/// two vendor rows each (the view keeps products with ≥ 2 vendors): a
/// ≥10k-row base table on both sides of the join.
fn large_db() -> Database {
    let db = product_vendor_db();
    let mut products = Vec::with_capacity(LARGE_PRODUCTS);
    let mut vendors = Vec::with_capacity(2 * LARGE_PRODUCTS);
    for i in 0..LARGE_PRODUCTS {
        let pid = format!("Q{i:05}");
        products.push(vec![
            Value::str(&pid),
            Value::str(format!("Widget {i}")),
            Value::str("Acme"),
        ]);
        vendors.push(vec![
            Value::str(format!("V{}", i % 7)),
            Value::str(&pid),
            Value::Double(10.0 + (i % 97) as f64),
        ]);
        vendors.push(vec![
            Value::str(format!("W{}", i % 5)),
            Value::str(&pid),
            Value::Double(20.0 + (i % 89) as f64),
        ]);
    }
    db.load("product", products).unwrap();
    db.load("vendor", vendors).unwrap();
    db
}

/// A session over the large catalog with recording triggers for all three
/// XML events (mirrors the differential-oracle suite's `watch_all`).
fn watch_large(mode: Mode) -> (Session, Log) {
    let db = large_db();
    let pg = catalog_path(&db);
    let mut quark = Quark::new(db, mode);
    quark.register_view(XmlView::new("catalog").with_anchor("product", pg));
    let session = Session::with_frontend(quark, Box::new(XQueryFrontend));
    let log = Log::default();
    for (event, name) in [
        (XmlEvent::Insert, "ins"),
        (XmlEvent::Update, "upd"),
        (XmlEvent::Delete, "del"),
    ] {
        let sink = log.clone();
        session
            .register_action(format!("record_{name}"), move |_db, call| {
                sink.0
                    .lock()
                    .unwrap()
                    .push((call.trigger.clone(), call.params.clone()));
                Ok(())
            })
            .expect("action");
        session
            .execute(&format!(
                "create trigger watch_{name} after {event} on view('catalog')/product \
                 do record_{name}(OLD_NODE, NEW_NODE)"
            ))
            .expect("trigger");
    }
    (session, log)
}

fn observed_set(log: &Log) -> BTreeSet<Observed> {
    log.take()
        .into_iter()
        .map(|(trigger, params)| {
            let event = trigger.trim_start_matches("watch_").to_string();
            let render = |v: &Value| match v {
                Value::Xml(x) => x.to_xml(),
                _ => String::new(),
            };
            let old = render(&params[0]);
            let new = render(&params[1]);
            let key = match (&params[0], &params[1]) {
                (_, Value::Xml(x)) => x.attr("name").unwrap_or_default().to_string(),
                (Value::Xml(x), _) => x.attr("name").unwrap_or_default().to_string(),
                _ => String::new(),
            };
            (event, key, old, new)
        })
        .collect()
}

/// The large-cardinality differential scenario: keyed statements against a
/// 10k-row base table fire exactly the oracle's events, in every mode.
#[test]
fn large_cardinality_matches_oracle_in_all_modes() {
    let (ungrouped, log_u) = watch_large(Mode::Ungrouped);
    let (grouped, log_g) = watch_large(Mode::Grouped);
    let (agg, log_a) = watch_large(Mode::GroupedAgg);
    let pg = catalog_path(&ungrouped.database());

    let statements = [
        "UPDATE vendor SET price = 42.0 WHERE vid = 'V1' AND pid = 'Q00001'",
        "INSERT INTO vendor VALUES ('Amazon', 'Q00002', 10.0)",
        "DELETE FROM vendor WHERE vid = 'V3' AND pid = 'Q00003'",
        "UPDATE product SET pname = 'Renamed' WHERE pid = 'Q00004'",
        "UPDATE vendor SET price = price + 1.0 WHERE pid = 'Q00005'",
    ];
    for stmt in statements {
        let expected: BTreeSet<Observed> = changes_of(&pg, &ungrouped.database(), |db| {
            sql::run(db, stmt).map_err(Error::from).map(|_| ())
        })
        .expect("oracle")
        .into_iter()
        .map(|c| {
            let event = match c.event {
                XmlEvent::Insert => "ins",
                XmlEvent::Update => "upd",
                XmlEvent::Delete => "del",
            }
            .to_string();
            let key = c.key[0].to_string();
            let old = c.old.map(|x| x.to_xml()).unwrap_or_default();
            let new = c.new.map(|x| x.to_xml()).unwrap_or_default();
            (event, key, old, new)
        })
        .collect();
        assert!(!expected.is_empty(), "statement affects the view: {stmt}");

        ungrouped.execute(stmt).expect("ungrouped");
        grouped.execute(stmt).expect("grouped");
        agg.execute(stmt).expect("agg");

        assert_eq!(observed_set(&log_u), expected, "UNGROUPED on {stmt}");
        assert_eq!(observed_set(&log_g), expected, "GROUPED on {stmt}");
        assert_eq!(observed_set(&log_a), expected, "GROUPED-AGG on {stmt}");
    }
}

/// A keyed statement at 10k rows is processed with index probes; the rows
/// visited by scans stay orders of magnitude below the table size.
#[test]
fn firing_at_10k_rows_probes_instead_of_scanning() {
    for mode in [Mode::Ungrouped, Mode::Grouped, Mode::GroupedAgg] {
        let (session, log) = watch_large(mode);
        // Warm up (first firing may build caches), then measure the next.
        session
            .execute("UPDATE vendor SET price = 1.5 WHERE vid = 'V3' AND pid = 'Q00010'")
            .expect("warmup");
        log.take();
        let before = session.quark().stats();
        session
            .execute("UPDATE vendor SET price = 2.5 WHERE vid = 'V4' AND pid = 'Q00011'")
            .expect("measured statement");
        let after = session.quark().stats();
        assert!(!log.take().is_empty(), "trigger fired ({mode:?})");
        assert!(
            after.index_probes > before.index_probes,
            "{mode:?}: firing must probe indexes"
        );
        let scanned = after.rows_scanned - before.rows_scanned;
        assert!(
            scanned < (LARGE_PRODUCTS / 10) as u64,
            "{mode:?}: scanned {scanned} rows per firing at a \
             {LARGE_PRODUCTS}-row base table — O(table), not O(affected)"
        );
    }
}

// ---------------------------------------------------------------------
// Cached vs uncached differential proptest
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    SetVendor(usize, usize, u32),
    DropVendor(usize, usize),
    Rename(usize, usize),
}

const VIDS: [&str; 4] = ["Amazon", "Bestbuy", "Circuitcity", "Buy.com"];
const PIDS: [&str; 4] = ["P1", "P2", "P3", "P4"];
const NAMES: [&str; 4] = ["CRT 15", "LCD 19", "OLED 42", "Plasma 50"];

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..4usize, 0..4usize, 1..400u32).prop_map(|(v, p, c)| Op::SetVendor(v, p, c)),
        (0..4usize, 0..4usize).prop_map(|(v, p)| Op::DropVendor(v, p)),
        (0..4usize, 0..4usize).prop_map(|(p, n)| Op::Rename(p, n)),
    ]
}

/// Render an op as SQL decided against the current state (identical in
/// both sessions at this point).
fn statements_for(db: &Database, op: &Op) -> Vec<String> {
    match op {
        Op::SetVendor(v, p, cents) => {
            let (vid, pid) = (VIDS[*v], PIDS[*p]);
            let key = [Value::str(vid), Value::str(pid)];
            let price = *cents as f64 / 2.0;
            let mut stmts = Vec::new();
            if db.table("vendor").unwrap().get(&key).is_some() {
                stmts.push(format!(
                    "UPDATE vendor SET price = {price:?} WHERE vid = '{vid}' AND pid = '{pid}'"
                ));
            } else {
                if db
                    .table("product")
                    .unwrap()
                    .get(&[Value::str(pid)])
                    .is_none()
                {
                    stmts.push(format!(
                        "INSERT INTO product VALUES ('{pid}', '{}', 'Acme')",
                        NAMES[*p]
                    ));
                }
                stmts.push(format!(
                    "INSERT INTO vendor VALUES ('{vid}', '{pid}', {price:?})"
                ));
            }
            stmts
        }
        Op::DropVendor(v, p) => vec![format!(
            "DELETE FROM vendor WHERE vid = '{}' AND pid = '{}'",
            VIDS[*v], PIDS[*p]
        )],
        Op::Rename(p, n) => {
            let pid = PIDS[*p];
            if db
                .table("product")
                .unwrap()
                .get(&[Value::str(pid)])
                .is_none()
            {
                return vec![];
            }
            vec![format!(
                "UPDATE product SET pname = '{}' WHERE pid = '{pid}'",
                NAMES[*n]
            )]
        }
    }
}

/// One watched session over the Figure-2 catalog; `cached` toggles the
/// executor cache.
fn watched_session(mode: Mode, cached: bool) -> (Session, Log) {
    let db = product_vendor_db();
    let pg = catalog_path(&db);
    let mut quark = Quark::new(db, mode);
    quark.register_view(XmlView::new("catalog").with_anchor("product", pg));
    let session = Session::with_frontend(quark, Box::new(XQueryFrontend));
    session.database_mut().set_exec_cache_enabled(cached);
    let log = Log::default();
    for (event, name) in [
        (XmlEvent::Insert, "ins"),
        (XmlEvent::Update, "upd"),
        (XmlEvent::Delete, "del"),
    ] {
        let sink = log.clone();
        session
            .register_action(format!("record_{name}"), move |_db, call| {
                sink.0
                    .lock()
                    .unwrap()
                    .push((call.trigger.clone(), call.params.clone()));
                Ok(())
            })
            .expect("action");
        session
            .execute(&format!(
                "create trigger watch_{name} after {event} on view('catalog')/product \
                 do record_{name}(OLD_NODE, NEW_NODE)"
            ))
            .expect("trigger");
    }
    (session, log)
}

/// Firings rendered as a byte-comparable *sequence* (order matters).
fn rendered_firings(log: &Log) -> Vec<String> {
    log.take()
        .into_iter()
        .map(|(trigger, params)| {
            let mut s = trigger;
            for p in params {
                s.push('|');
                s.push_str(&p.to_string());
            }
            s
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        rng_seed: Some(0x1cde_2005_0004),
        ..ProptestConfig::default()
    })]

    /// Ordered storage plus the cross-firing executor cache are invisible:
    /// a caching session and an uncached one return byte-identical
    /// statement results and fire in byte-identical order, in both grouped
    /// modes.
    #[test]
    fn cached_execution_is_byte_identical(
        ops in proptest::collection::vec(op_strategy(), 1..12),
        agg_mode in 0..2usize,
    ) {
        let mode = if agg_mode == 1 { Mode::GroupedAgg } else { Mode::Grouped };
        let (cached, log_c) = watched_session(mode, true);
        let (uncached, log_p) = watched_session(mode, false);
        for op in &ops {
            // Hoist: the guard must drop before `execute` takes the write
            // lock, or the loop would self-deadlock.
            let stmts = statements_for(&cached.database(), op);
            for stmt in stmts {
                let a = cached.execute(&stmt);
                let b = uncached.execute(&stmt);
                prop_assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "result mismatch on {}",
                    stmt
                );
                prop_assert_eq!(
                    rendered_firings(&log_c),
                    rendered_firings(&log_p),
                    "firing mismatch on {}",
                    stmt
                );
            }
        }
        // The cached session actually cached something at least once in a
        // while; assert nothing here (plans may be all-unstable), but the
        // cache must never grow without bound.
        prop_assert!(cached.database().exec_cache_len() < 1024);
    }
}
