//! Full-syntax pipeline: XQuery view definitions and `CREATE TRIGGER`
//! statements parsed from text, translated, and fired.

use std::sync::{Arc, Mutex};

use quark_core::relational::{ColumnDef, ColumnType, Database, TableSchema, Value};
use quark_core::{Mode, Quark};

fn orders_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "customer",
            vec![
                ColumnDef::new("cid", ColumnType::Int),
                ColumnDef::new("name", ColumnType::Str),
            ],
            &["cid"],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "orders",
            vec![
                ColumnDef::new("oid", ColumnType::Int),
                ColumnDef::new("cid", ColumnType::Int),
                ColumnDef::new("total", ColumnType::Double),
            ],
            &["oid"],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_index("orders", "cid").unwrap();
    db.load(
        "customer",
        vec![
            vec![Value::Int(1), Value::str("ada")],
            vec![Value::Int(2), Value::str("bob")],
        ],
    )
    .unwrap();
    db.load(
        "orders",
        vec![
            vec![Value::Int(10), Value::Int(1), Value::Double(120.0)],
            vec![Value::Int(11), Value::Int(1), Value::Double(80.0)],
            vec![Value::Int(12), Value::Int(2), Value::Double(300.0)],
            vec![Value::Int(13), Value::Int(2), Value::Double(20.0)],
        ],
    )
    .unwrap();
    db
}

const VIEW: &str = r#"
    create view accounts as {
      <accounts>{
        for $c in view("default")/customer/row
        let $orders := view("default")/orders/row[./cid = $c/cid]
        where count($orders) >= 2
        return <customer name={$c/name}>
          { for $o in $orders return <order><oid>{$o/oid}</oid><total>{$o/total}</total></order> }
        </customer>
      }</accounts>
    }"#;

type FiringLog = Arc<Mutex<Vec<(String, String)>>>;

fn system(mode: Mode) -> (Quark, FiringLog) {
    let mut quark = Quark::new(orders_db(), mode);
    quark_xquery::register_view(&mut quark, VIEW).unwrap();
    let log = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&log);
    quark.register_action("alert", move |_db, call| {
        sink.lock()
            .unwrap()
            .push((call.trigger.clone(), call.params[0].to_string()));
        Ok(())
    });
    (quark, log)
}

#[test]
fn parsed_trigger_with_attr_condition_fires() {
    for mode in [Mode::Ungrouped, Mode::Grouped, Mode::GroupedAgg] {
        let (mut quark, log) = system(mode);
        quark_xquery::create_trigger(
            &mut quark,
            r#"CREATE TRIGGER AdaWatch AFTER UPDATE
               ON view('accounts')/customer
               WHERE OLD_NODE/@name = 'ada'
               DO alert(NEW_NODE)"#,
        )
        .unwrap();
        // Ada's order total changes: fires.
        quark
            .db
            .update_by_key("orders", &[Value::Int(10)], &[(2, Value::Double(99.0))])
            .unwrap();
        // Bob's order changes: no fire.
        quark
            .db
            .update_by_key("orders", &[Value::Int(12)], &[(2, Value::Double(1.0))])
            .unwrap();
        let entries = std::mem::take(&mut *log.lock().unwrap());
        assert_eq!(entries.len(), 1, "{mode:?}: {entries:?}");
        assert!(entries[0].1.contains("name=\"ada\""), "{mode:?}");
        assert!(entries[0].1.contains("<total>99</total>"), "{mode:?}");
    }
}

#[test]
fn parsed_quantified_condition() {
    for mode in [Mode::Grouped, Mode::GroupedAgg] {
        let (mut quark, log) = system(mode);
        // Fire when some NEW order exceeds 500.
        quark_xquery::create_trigger(
            &mut quark,
            r#"create trigger Big after update on view('accounts')/customer
               where some $o in NEW_NODE/order satisfies ./total > 500
               do alert(NEW_NODE)"#,
        )
        .unwrap();
        quark
            .db
            .update_by_key("orders", &[Value::Int(10)], &[(2, Value::Double(200.0))])
            .unwrap();
        assert!(log.lock().unwrap().is_empty(), "{mode:?}");
        quark
            .db
            .update_by_key("orders", &[Value::Int(10)], &[(2, Value::Double(900.0))])
            .unwrap();
        assert_eq!(log.lock().unwrap().len(), 1, "{mode:?}");
    }
}

#[test]
fn parsed_insert_and_delete_triggers() {
    let (mut quark, log) = system(Mode::GroupedAgg);
    quark_xquery::create_trigger(
        &mut quark,
        "create trigger NewCust after insert on view('accounts')/customer do alert(NEW_NODE)",
    )
    .unwrap();
    quark_xquery::create_trigger(
        &mut quark,
        "create trigger GoneCust after delete on view('accounts')/customer do alert(OLD_NODE)",
    )
    .unwrap();

    // A new customer with two orders enters the view.
    quark
        .db
        .insert("customer", vec![vec![Value::Int(3), Value::str("eve")]])
        .unwrap();
    quark
        .db
        .insert(
            "orders",
            vec![
                vec![Value::Int(20), Value::Int(3), Value::Double(5.0)],
                vec![Value::Int(21), Value::Int(3), Value::Double(6.0)],
            ],
        )
        .unwrap();
    // Bob drops to one order and leaves the view.
    quark.db.delete_by_key("orders", &[Value::Int(13)]).unwrap();

    let entries = std::mem::take(&mut *log.lock().unwrap());
    let names: Vec<&str> = entries.iter().map(|(t, _)| t.as_str()).collect();
    assert_eq!(names, vec!["NewCust", "GoneCust"], "{entries:?}");
    assert!(entries[0].1.contains("name=\"eve\""));
    assert!(entries[1].1.contains("name=\"bob\""));
}

#[test]
fn count_condition_from_text() {
    let (mut quark, log) = system(Mode::Grouped);
    quark_xquery::create_trigger(
        &mut quark,
        r#"create trigger Busy after update on view('accounts')/customer
           where count(NEW_NODE/order) >= 3 do alert(NEW_NODE)"#,
    )
    .unwrap();
    // Going from 2 to 3 orders is an UPDATE of the customer node with the
    // count condition now satisfied.
    quark
        .db
        .insert(
            "orders",
            vec![vec![Value::Int(30), Value::Int(1), Value::Double(1.0)]],
        )
        .unwrap();
    assert_eq!(log.lock().unwrap().len(), 1);
}
