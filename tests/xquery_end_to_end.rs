//! Full-syntax pipeline: schema DDL, XQuery view definitions, `CREATE
//! TRIGGER` statements and data changes — every statement through one
//! `Session::execute` front door.

use std::sync::{Arc, Mutex};

use quark_core::relational::Database;
use quark_core::{Mode, Session};

fn orders_session(mode: Mode) -> Session {
    let session = quark_xquery::session(Database::new(), mode);
    for stmt in [
        "CREATE TABLE customer (cid INT PRIMARY KEY, name TEXT)",
        "CREATE TABLE orders (oid INT PRIMARY KEY, cid INT, total DOUBLE)",
        "CREATE INDEX ON orders (cid)",
        "INSERT INTO customer VALUES (1, 'ada'), (2, 'bob')",
        "INSERT INTO orders VALUES (10, 1, 120.0), (11, 1, 80.0), \
                                   (12, 2, 300.0), (13, 2, 20.0)",
    ] {
        session.execute(stmt).unwrap();
    }
    session
}

const VIEW: &str = r#"
    create view accounts as {
      <accounts>{
        for $c in view("default")/customer/row
        let $orders := view("default")/orders/row[./cid = $c/cid]
        where count($orders) >= 2
        return <customer name={$c/name}>
          { for $o in $orders return <order><oid>{$o/oid}</oid><total>{$o/total}</total></order> }
        </customer>
      }</accounts>
    }"#;

type FiringLog = Arc<Mutex<Vec<(String, String)>>>;

fn system(mode: Mode) -> (Session, FiringLog) {
    let session = orders_session(mode);
    session.execute(VIEW).unwrap();
    let log = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&log);
    session
        .register_action("alert", move |_db, call| {
            sink.lock()
                .unwrap()
                .push((call.trigger.clone(), call.params[0].to_string()));
            Ok(())
        })
        .unwrap();
    (session, log)
}

#[test]
fn parsed_trigger_with_attr_condition_fires() {
    for mode in [Mode::Ungrouped, Mode::Grouped, Mode::GroupedAgg] {
        let (session, log) = system(mode);
        session
            .execute(
                r#"CREATE TRIGGER AdaWatch AFTER UPDATE
                   ON view('accounts')/customer
                   WHERE OLD_NODE/@name = 'ada'
                   DO alert(NEW_NODE)"#,
            )
            .unwrap();
        // Ada's order total changes: fires.
        session
            .execute("UPDATE orders SET total = 99.0 WHERE oid = 10")
            .unwrap();
        // Bob's order changes: no fire.
        session
            .execute("UPDATE orders SET total = 1.0 WHERE oid = 12")
            .unwrap();
        let entries = std::mem::take(&mut *log.lock().unwrap());
        assert_eq!(entries.len(), 1, "{mode:?}: {entries:?}");
        assert!(entries[0].1.contains("name=\"ada\""), "{mode:?}");
        assert!(entries[0].1.contains("<total>99</total>"), "{mode:?}");
    }
}

#[test]
fn parsed_quantified_condition() {
    for mode in [Mode::Grouped, Mode::GroupedAgg] {
        let (session, log) = system(mode);
        // Fire when some NEW order exceeds 500.
        session
            .execute(
                r#"create trigger Big after update on view('accounts')/customer
                   where some $o in NEW_NODE/order satisfies ./total > 500
                   do alert(NEW_NODE)"#,
            )
            .unwrap();
        session
            .execute("UPDATE orders SET total = 200.0 WHERE oid = 10")
            .unwrap();
        assert!(log.lock().unwrap().is_empty(), "{mode:?}");
        session
            .execute("UPDATE orders SET total = 900.0 WHERE oid = 10")
            .unwrap();
        assert_eq!(log.lock().unwrap().len(), 1, "{mode:?}");
    }
}

#[test]
fn parsed_insert_and_delete_triggers() {
    let (session, log) = system(Mode::GroupedAgg);
    session
        .execute(
            "create trigger NewCust after insert on view('accounts')/customer \
             do alert(NEW_NODE)",
        )
        .unwrap();
    session
        .execute(
            "create trigger GoneCust after delete on view('accounts')/customer \
             do alert(OLD_NODE)",
        )
        .unwrap();

    // A new customer with two orders enters the view.
    session
        .execute("INSERT INTO customer VALUES (3, 'eve')")
        .unwrap();
    session
        .execute("INSERT INTO orders VALUES (20, 3, 5.0), (21, 3, 6.0)")
        .unwrap();
    // Bob drops to one order and leaves the view.
    session
        .execute("DELETE FROM orders WHERE oid = 13")
        .unwrap();

    let entries = std::mem::take(&mut *log.lock().unwrap());
    let names: Vec<&str> = entries.iter().map(|(t, _)| t.as_str()).collect();
    assert_eq!(names, vec!["NewCust", "GoneCust"], "{entries:?}");
    assert!(entries[0].1.contains("name=\"eve\""));
    assert!(entries[1].1.contains("name=\"bob\""));
}

#[test]
fn count_condition_from_text() {
    let (session, log) = system(Mode::Grouped);
    session
        .execute(
            r#"create trigger Busy after update on view('accounts')/customer
               where count(NEW_NODE/order) >= 3 do alert(NEW_NODE)"#,
        )
        .unwrap();
    // Going from 2 to 3 orders is an UPDATE of the customer node with the
    // count condition now satisfied.
    session
        .execute("INSERT INTO orders VALUES (30, 1, 1.0)")
        .unwrap();
    assert_eq!(log.lock().unwrap().len(), 1);
}
