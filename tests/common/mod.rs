//! Shared helpers for the integration suite: the paper's catalog system
//! behind a [`Session`] front door, with a recording notification action.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use quark_core::relational::{Database, Value};
use quark_core::xml::XmlNodeRef;
use quark_core::xqgm::fixtures::{catalog_path_graph, product_vendor_db};
use quark_core::xqgm::{Graph, KeyedGraph};
use quark_core::{ActionCall, Mode, PathGraph, Quark, Session, StatementError, XmlView};
use quark_xquery::XQueryFrontend;

/// One recorded firing: `(trigger name, params)`.
pub type Firing = (String, Vec<Value>);

/// A log of action invocations shared with the system.
#[derive(Clone, Default)]
pub struct Log(pub Arc<Mutex<Vec<Firing>>>);

impl Log {
    #[allow(dead_code)] // each test binary compiles this module separately
    pub fn take(&self) -> Vec<Firing> {
        std::mem::take(&mut self.0.lock().unwrap())
    }

    pub fn len(&self) -> usize {
        self.0.lock().unwrap().len()
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Build the catalog Path graph (`view('catalog')/product`) over `db`.
#[allow(dead_code)] // each test binary compiles this module separately
pub fn catalog_path(db: &Database) -> PathGraph {
    let mut g = Graph::new();
    let (top, _) = catalog_path_graph(&mut g);
    let (kg, root) = KeyedGraph::normalize(&g, top, db).expect("normalize");
    let mut attr_cols = HashMap::new();
    attr_cols.insert("name".to_string(), 0);
    PathGraph {
        kg,
        root,
        node_col: 1,
        attr_cols,
    }
}

/// A session over the Figure-2 database with the catalog view registered
/// (programmatically, from the hand-built fixture path graph — the same
/// shape the textual Figure-3 view lowers to) and a `notify` action that
/// records firings. DDL and data changes go through `session.execute`.
#[allow(dead_code)] // each test binary compiles this module; not all use it
pub fn catalog_system(mode: Mode) -> (Session, Log) {
    let db = product_vendor_db();
    let pg = catalog_path(&db);
    let mut quark = Quark::new(db, mode);
    quark.register_view(XmlView::new("catalog").with_anchor("product", pg));
    let session = Session::with_frontend(quark, Box::new(XQueryFrontend));
    let log = Log::default();
    let sink = log.clone();
    session
        .register_action("notify", move |_db: &Database, call: &ActionCall| {
            sink.0
                .lock()
                .unwrap()
                .push((call.trigger.clone(), call.params.clone()));
            Ok(())
        })
        .expect("register notify");
    (session, log)
}

/// First XML param of a firing.
#[allow(dead_code)]
pub fn node_param(firing: &Firing) -> XmlNodeRef {
    match &firing.1[0] {
        Value::Xml(x) => x.clone(),
        other => panic!("expected XML param, got {other:?}"),
    }
}

#[allow(dead_code)]
pub fn all_modes() -> [Mode; 3] {
    [Mode::Ungrouped, Mode::Grouped, Mode::GroupedAgg]
}

/// One-vendor price update through the statement surface (a keyed UPDATE).
#[allow(dead_code)]
pub fn update_price(
    session: &mut Session,
    vid: &str,
    pid: &str,
    price: f64,
) -> Result<(), StatementError> {
    session
        .execute(&format!(
            "UPDATE vendor SET price = {price:?} WHERE vid = '{vid}' AND pid = '{pid}'"
        ))
        .map(|_| ())
}
