//! The `Session` front door end to end: every [`StatementResult`] variant,
//! parse-error spans, and the unified error surface.

use quark_core::relational::{Error, Value};
use quark_core::{Mode, ObjectKind, Session, StatementError, StatementResult};

const CATALOG: &str = r#"
    create view catalog as {
      <catalog>{
        for $prodname in distinct(view("default")/product/row/pname)
        let $products := view("default")/product/row[./pname = $prodname]
        let $vendors := view("default")/vendor/row[./pid = $products/pid]
        where count($vendors) >= 2
        return <product name={$prodname}>
          { for $vendor in $vendors return <vendor>{$vendor/*}</vendor> }
        </product>
      }</catalog>
    }"#;

fn catalog_session() -> Session {
    let db = quark_core::xqgm::fixtures::product_vendor_db();
    let session = quark_xquery::session(db, Mode::Grouped);
    session.execute(CATALOG).unwrap();
    session.register_action("notify", |_, _| Ok(())).unwrap();
    session
}

// ---------------------------------------------------------------------
// StatementResult variants
// ---------------------------------------------------------------------

#[test]
fn created_table_index_view_and_trigger() {
    let session = catalog_session();
    assert_eq!(
        session
            .execute("CREATE TABLE audit (id INT PRIMARY KEY, note TEXT)")
            .unwrap(),
        StatementResult::Created {
            kind: ObjectKind::Table,
            name: "audit".into()
        }
    );
    assert_eq!(
        session.execute("CREATE INDEX ON vendor (pid)").unwrap(),
        StatementResult::Created {
            kind: ObjectKind::Index,
            name: "vendor.pid".into()
        }
    );
    // The view was created in the fixture; create another to observe the
    // result value.
    let created = session
        .execute(
            r#"create view flat as {
                 <flat>{
                   for $p in view("default")/product/row
                   return <item name={$p/pname}><pid>{$p/pid}</pid></item>
                 }</flat>
               }"#,
        )
        .unwrap();
    assert_eq!(
        created,
        StatementResult::Created {
            kind: ObjectKind::View,
            name: "flat".into()
        }
    );
    assert_eq!(
        session
            .execute("create trigger T after update on view('catalog')/product do notify(NEW_NODE)")
            .unwrap(),
        StatementResult::Created {
            kind: ObjectKind::Trigger,
            name: "T".into()
        }
    );
}

#[test]
fn rows_affected_for_insert_update_delete_and_misses() {
    let session = catalog_session();
    assert_eq!(
        session
            .execute("INSERT INTO vendor VALUES ('Newegg', 'P1', 99.0), ('Newegg', 'P2', 98.0)")
            .unwrap()
            .rows_affected(),
        Some(2)
    );
    assert_eq!(
        session
            .execute("UPDATE vendor SET price = 75.0 WHERE vid = 'Amazon' AND pid = 'P1'")
            .unwrap(),
        StatementResult::RowsAffected(1)
    );
    // Keyed miss: zero rows, no error.
    assert_eq!(
        session
            .execute("UPDATE vendor SET price = 1.0 WHERE vid = 'zz' AND pid = 'P9'")
            .unwrap(),
        StatementResult::RowsAffected(0)
    );
    // Scan path with arithmetic SET.
    assert_eq!(
        session
            .execute("UPDATE vendor SET price = price * 2.0 WHERE pid = 'P2'")
            .unwrap(),
        StatementResult::RowsAffected(3)
    );
    assert_eq!(
        session
            .execute("DELETE FROM vendor WHERE vid = 'Newegg'")
            .unwrap(),
        StatementResult::RowsAffected(2)
    );
}

#[test]
fn rows_variant_orders_by_primary_key() {
    let session = catalog_session();
    let StatementResult::Rows { columns, rows } = session
        .execute("SELECT vid, price FROM vendor WHERE pid = 'P1'")
        .unwrap()
    else {
        panic!("expected Rows")
    };
    assert_eq!(columns, vec!["vid".to_string(), "price".to_string()]);
    let vids: Vec<String> = rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(vids, vec!["Amazon", "Bestbuy", "Circuitcity"]);
}

#[test]
fn explain_variant_renders_translation_artifacts() {
    let session = catalog_session();
    session
        .execute(
            "create trigger Notify after update on view('catalog')/product \
             where OLD_NODE/@name = 'CRT 15' do notify(NEW_NODE)",
        )
        .unwrap();
    let StatementResult::Explain(text) = session.execute("EXPLAIN TRIGGER Notify").unwrap() else {
        panic!("expected Explain")
    };
    assert!(text.contains("XML trigger `Notify`"), "{text}");
    assert!(text.contains("Grouped"), "{text}");
    assert!(text.contains("constants"), "{text}");
    assert!(text.contains("__quark_g"), "{text}");
    assert!(text.contains("TransitionScan"), "{text}");
    // The declared latch footprint is part of the rendering: the read set
    // covers the view's base tables, and `notify` is registered without a
    // declared write set, so the write side reports global.
    assert!(text.contains("read footprint: {"), "{text}");
    assert!(text.contains("\"product\""), "{text}");
    assert!(
        text.contains("write footprint: global (member action has no declared write set)"),
        "{text}"
    );
    // Unknown triggers are a Db error.
    assert!(matches!(
        session.execute("EXPLAIN TRIGGER nope").unwrap_err(),
        StatementError::Db(Error::UnknownTrigger(_))
    ));
}

#[test]
fn xml_variant_materializes_the_view_in_key_order() {
    let session = catalog_session();
    let StatementResult::Xml(nodes) = session
        .execute("MATERIALIZE view('catalog')/product")
        .unwrap()
    else {
        panic!("expected Xml")
    };
    let names: Vec<String> = nodes
        .iter()
        .map(|n| n.attr("name").unwrap_or_default().to_string())
        .collect();
    assert_eq!(names, vec!["CRT 15".to_string(), "LCD 19".to_string()]);
    // The view reacts to statements: drop LCD 19 below the threshold.
    session
        .execute("DELETE FROM vendor WHERE vid = 'Buy.com' AND pid = 'P2'")
        .unwrap();
    let StatementResult::Xml(nodes) = session
        .execute("MATERIALIZE view('catalog')/product")
        .unwrap()
    else {
        panic!("expected Xml")
    };
    assert_eq!(nodes.len(), 1);
}

#[test]
fn dropped_variant_for_triggers_and_tables() {
    let session = catalog_session();
    session
        .execute("create trigger T after update on view('catalog')/product do notify(NEW_NODE)")
        .unwrap();
    assert_eq!(
        session.execute("DROP TRIGGER T").unwrap(),
        StatementResult::Dropped {
            kind: ObjectKind::Trigger,
            name: "T".into()
        }
    );
    session
        .execute("CREATE TABLE scratch (id INT PRIMARY KEY)")
        .unwrap();
    assert_eq!(
        session.execute("DROP TABLE scratch").unwrap(),
        StatementResult::Dropped {
            kind: ObjectKind::Table,
            name: "scratch".into()
        }
    );
}

// ---------------------------------------------------------------------
// Errors: spans and the unified surface
// ---------------------------------------------------------------------

#[test]
fn sql_parse_errors_carry_exact_spans() {
    let session = catalog_session();

    let text = "SELEC * FROM vendor";
    let err = session.execute(text).unwrap_err();
    let StatementError::Parse { span, .. } = err else {
        panic!("expected Parse, got {err:?}")
    };
    assert_eq!(span.start, 0);

    let text = "UPDATE vendor SET prize = 1.0 WHERE vid = 'Amazon' AND pid = 'P1'";
    let err = session.execute(text).unwrap_err();
    let StatementError::Parse { span, message } = err else {
        panic!("expected Parse")
    };
    assert_eq!(&text[span.start..span.end], "prize");
    assert!(message.contains("unknown column `prize`"), "{message}");

    let text = "SELECT vid, prices FROM vendor";
    let err = session.execute(text).unwrap_err();
    assert_eq!(
        err.span().map(|s| &text[s.start..s.end]),
        Some("prices"),
        "{err}"
    );
}

#[test]
fn frontend_parse_errors_carry_spans_too() {
    let session = catalog_session();
    let err = session
        .execute("create trigger T after explode on view('catalog')/product do notify()")
        .unwrap_err();
    assert!(err.span().is_some(), "{err:?}");
    assert!(err.to_string().contains("explode"), "{err}");

    let err = session
        .execute("create view broken as { <v> }")
        .unwrap_err();
    assert!(err.span().is_some(), "{err:?}");
}

#[test]
fn leading_comments_route_to_the_frontend() {
    let session = catalog_session();
    // `--` comments are accepted on every statement, including the two
    // frontend-parsed ones.
    let created = session
        .execute(
            "-- install the reporting view\n\
             create view flat2 as {\n\
               <flat>{ for $p in view(\"default\")/product/row\n\
                       return <item name={$p/pname}><pid>{$p/pid}</pid></item> }</flat>\n\
             }",
        )
        .unwrap();
    assert_eq!(
        created,
        StatementResult::Created {
            kind: ObjectKind::View,
            name: "flat2".into()
        }
    );
    session
        .execute(
            "-- watch CRT 15\n\
             create trigger C after update on view('catalog')/product do notify(NEW_NODE)",
        )
        .unwrap();
    session
        .execute("-- reprice\nUPDATE vendor SET price = 60.0 WHERE vid = 'Amazon' AND pid = 'P1'")
        .unwrap();
    // A frontend parse error behind a comment still spans the ORIGINAL
    // text (shifted past the stripped prefix).
    let text = "-- broken\ncreate trigger T after explode on view('catalog')/product do f()";
    let err = session.execute(text).unwrap_err();
    let span = err.span().expect("frontend parse error has a span");
    assert!(span.end <= text.len(), "{span:?} vs len {}", text.len());
    assert!(
        text[span.start..].starts_with("explode") || text[..span.end].contains("explode"),
        "span {span:?} should sit near `explode` in {text:?}"
    );
}

#[test]
fn end_of_input_frontend_errors_have_clamped_spans() {
    let session = catalog_session();
    let text = "create view v as {";
    let err = session.execute(text).unwrap_err();
    let span = err.span().expect("parse error has a span");
    assert!(
        span.start <= text.len() && span.end <= text.len(),
        "{span:?}"
    );
    let _ = &text[span.start..span.end]; // must not panic
}

#[test]
fn statement_error_displays_span_position() {
    let session = catalog_session();
    let err = session.execute("DELETE FRUM vendor").unwrap_err();
    let rendered = err.to_string();
    assert!(rendered.starts_with("parse error at "), "{rendered}");
    assert!(rendered.contains("FROM"), "{rendered}");
}

#[test]
fn engine_errors_pass_through_unspanned() {
    let session = catalog_session();
    let err = session
        .execute("INSERT INTO vendor VALUES ('Amazon', 'P1', 1.0)")
        .unwrap_err();
    assert!(matches!(
        err,
        StatementError::Db(Error::DuplicateKey { .. })
    ));
    assert!(err.span().is_none());
    let err = session.execute("SELECT * FROM nosuch").unwrap_err();
    assert!(matches!(err, StatementError::Db(Error::UnknownTable(_))));
}

#[test]
fn trigger_firing_errors_surface_through_execute() {
    let session = catalog_session();
    session
        .execute("create trigger Bad after update on view('catalog')/product do missing_fn()")
        .unwrap();
    let err = session
        .execute("UPDATE vendor SET price = 75.0 WHERE vid = 'Amazon' AND pid = 'P1'")
        .unwrap_err();
    assert!(err.to_string().contains("missing_fn"), "{err}");
}

// ---------------------------------------------------------------------
// Statement surface drives the whole lifecycle from an empty database
// ---------------------------------------------------------------------

#[test]
fn full_lifecycle_from_empty_database() {
    use quark_core::relational::Database;
    use std::sync::{Arc, Mutex};

    let session = quark_xquery::session(Database::new(), Mode::GroupedAgg);
    for stmt in [
        "CREATE TABLE customer (cid INT PRIMARY KEY, name TEXT)",
        "CREATE TABLE orders (oid INT PRIMARY KEY, cid INT, total DOUBLE)",
        "CREATE INDEX ON orders (cid)",
        "INSERT INTO customer VALUES (1, 'ada'), (2, 'bob')",
        "INSERT INTO orders VALUES (10, 1, 120.0), (11, 1, 80.0), (12, 2, 300.0), (13, 2, 20.0)",
        r#"create view accounts as {
             <accounts>{
               for $c in view("default")/customer/row
               let $orders := view("default")/orders/row[./cid = $c/cid]
               where count($orders) >= 2
               return <customer name={$c/name}>
                 { for $o in $orders return <order><oid>{$o/oid}</oid><total>{$o/total}</total></order> }
               </customer>
             }</accounts>
           }"#,
    ] {
        session.execute(stmt).unwrap();
    }
    let fired = Arc::new(Mutex::new(0usize));
    let f2 = Arc::clone(&fired);
    session
        .register_action("alert", move |_, _| {
            *f2.lock().unwrap() += 1;
            Ok(())
        })
        .unwrap();
    session
        .execute(
            "create trigger W after update on view('accounts')/customer \
             where OLD_NODE/@name = 'ada' do alert(NEW_NODE)",
        )
        .unwrap();
    session
        .execute("UPDATE orders SET total = total + 1.0 WHERE cid = 1")
        .unwrap();
    assert_eq!(*fired.lock().unwrap(), 1);
    // Inspection through the same door.
    let StatementResult::Rows { rows, .. } = session
        .execute("SELECT total FROM orders WHERE cid = 1")
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], Value::Double(121.0));
}

// ---------------------------------------------------------------------
// UTF-8 statements: spans stay sliceable
// ---------------------------------------------------------------------

#[test]
fn multibyte_statements_produce_sliceable_spans() {
    let session = catalog_session();
    // SQL-side error on a multibyte token.
    let text = "SELECT ☃ FROM vendor";
    let err = session.execute(text).unwrap_err();
    let span = err.span().expect("parse error has a span");
    assert_eq!(&text[span.start..span.end], "☃");

    // Frontend error landing inside non-ASCII view text, behind a comment
    // (spans are shifted back into the original statement).
    let text = "-- vue cassée\ncreate view brisée as { ☃ }";
    let err = session.execute(text).unwrap_err();
    let span = err.span().expect("frontend parse error has a span");
    assert!(
        text.get(span.start..span.end).is_some(),
        "span {span:?} must sit on char boundaries of {text:?}"
    );

    // Non-ASCII *data* flows through statements and back out of SELECT.
    session
        .execute("CREATE TABLE notes (id INT PRIMARY KEY, body TEXT)")
        .unwrap();
    session
        .execute("INSERT INTO notes VALUES (1, 'héllo ☃ — naïve')")
        .unwrap();
    let StatementResult::Rows { rows, .. } = session
        .execute("SELECT body FROM notes WHERE body = 'héllo ☃ — naïve'")
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Value::str("héllo ☃ — naïve"));
    // And a trailing-garbage error after a multibyte literal stays safe.
    let text = "INSERT INTO notes VALUES (2, 'héllo™') ✗";
    let err = session.execute(text).unwrap_err();
    let span = err.span().expect("parse error has a span");
    assert!(text.get(span.start..span.end).is_some(), "{span:?}");
}
