//! Smoke test: every example binary builds and exits successfully.
//!
//! Runs `cargo run --example <name>` for each of the four examples using
//! the same cargo that is running this test. Cargo's target-directory lock
//! serializes the inner invocations against the outer build, so this is
//! safe under parallel test execution (at the cost of briefly waiting for
//! the lock).

use std::process::Command;

#[test]
fn all_examples_run_to_completion() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    for example in [
        "quickstart",
        "orders_monitor",
        "catalog_notifications",
        "trigger_explain",
        "wire_quickstart",
    ] {
        let output = Command::new(&cargo)
            .args(["run", "--quiet", "--example", example])
            .current_dir(manifest_dir)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example {example} exited with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}
