//! Trigger-semantics edge cases: spurious-update suppression for
//! non-injective views (Appendix E.1 / F), condition evaluation paths,
//! event classification corners, and trigger drop/recreate lifecycle —
//! all driven through `Session::execute`.

mod common;

use std::collections::HashMap;

use common::{all_modes, catalog_system, node_param, update_price, Log};
use quark_core::relational::Database;
use quark_core::xqgm::fixtures::{minprice_path_graph, product_vendor_db};
use quark_core::xqgm::{Graph, KeyedGraph};
use quark_core::{Mode, PathGraph, Quark, Session, XmlView};
use quark_xquery::XQueryFrontend;

fn minprice_system(mode: Mode) -> (Session, Log) {
    let db = product_vendor_db();
    let mut g = Graph::new();
    let top = minprice_path_graph(&mut g);
    let (kg, root) = KeyedGraph::normalize(&g, top, &db).unwrap();
    let mut attr_cols = HashMap::new();
    attr_cols.insert("name".to_string(), 0);
    let pg = PathGraph {
        kg,
        root,
        node_col: 1,
        attr_cols,
    };
    let mut quark = Quark::new(db, mode);
    quark.register_view(XmlView::new("minprice").with_anchor("product", pg));
    let session = Session::with_frontend(quark, Box::new(XQueryFrontend));
    let log = Log::default();
    let sink = log.clone();
    session
        .register_action("notify", move |_db: &Database, call| {
            sink.0
                .lock()
                .unwrap()
                .push((call.trigger.clone(), call.params.clone()));
            Ok(())
        })
        .unwrap();
    (session, log)
}

const MINPRICE_TRIGGER: &str = "create trigger MinWatch after update \
     on view('minprice')/product do notify(NEW_NODE)";

/// Appendix E.1's spurious-update example: changing a non-minimum price
/// leaves the min-price node unchanged; the trigger must NOT fire. The
/// min-price view is not injective (min() is lossy), so this exercises the
/// explicit `OLD_NODE != NEW_NODE` check.
#[test]
fn non_minimum_price_change_is_suppressed() {
    for mode in all_modes() {
        let (mut session, log) = minprice_system(mode);
        session.execute(MINPRICE_TRIGGER).unwrap();
        // CRT 15 groups P1{100,120,150} and P3{120,140}: min is 100.
        // Raising Circuitcity P1 from 150 to 160 keeps min = 100.
        update_price(&mut session, "Circuitcity", "P1", 160.0).unwrap();
        assert_eq!(log.len(), 0, "{mode:?}: spurious update fired");
        // Changing the actual minimum fires.
        update_price(&mut session, "Amazon", "P1", 50.0).unwrap();
        let firings = log.take();
        assert_eq!(firings.len(), 1, "{mode:?}");
        let node = node_param(&firings[0]);
        assert_eq!(
            node.children_named("min").next().unwrap().text_content(),
            "50",
            "{mode:?}"
        );
    }
}

/// Conditions with nested step predicates cannot be pushed relationally and
/// fall back to value-space evaluation; results must be identical.
#[test]
fn residual_condition_with_step_predicate() {
    for mode in all_modes() {
        let (mut session, log) = catalog_system(mode);
        // count(NEW_NODE/vendor[./price < 110]) >= 1 -- the nested shape
        // discussed in section 5.1.
        session
            .execute(
                "create trigger Cheap after update on view('catalog')/product \
                 where count(NEW_NODE/vendor[./price < 110]) >= 1 \
                 do notify(NEW_NODE)",
            )
            .unwrap();

        // 100 -> 105: still a vendor under 110 -> fires.
        update_price(&mut session, "Amazon", "P1", 105.0).unwrap();
        assert_eq!(log.take().len(), 1, "{mode:?}");
        // 105 -> 130: no vendor under 110 anymore -> node updates, but the
        // condition is false.
        update_price(&mut session, "Amazon", "P1", 130.0).unwrap();
        assert_eq!(log.len(), 0, "{mode:?}");
    }
}

/// Conditions touching deep OLD content force the old side to construct
/// nodes (no skeleton); verify correct OLD values flow into conditions.
#[test]
fn old_content_condition_forces_full_old_side() {
    for mode in all_modes() {
        let (mut session, log) = catalog_system(mode);
        // Fire only when the OLD node still had a vendor under 110.
        session
            .execute(
                "create trigger WasCheap after update on view('catalog')/product \
                 where OLD_NODE/vendor/price < 110 do notify(OLD_NODE)",
            )
            .unwrap();

        // OLD has Amazon at 100 (< 110): fires.
        update_price(&mut session, "Amazon", "P1", 200.0).unwrap();
        assert_eq!(log.take().len(), 1, "{mode:?}");
        // Now OLD min is 120: does not fire.
        update_price(&mut session, "Amazon", "P1", 250.0).unwrap();
        assert_eq!(log.len(), 0, "{mode:?}");
    }
}

/// INSERT conditions referencing NEW attributes are honoured.
#[test]
fn insert_condition_on_new_attribute() {
    for mode in all_modes() {
        let (session, log) = catalog_system(mode);
        session
            .execute(
                "create trigger NewOled after insert on view('catalog')/product \
                 where NEW_NODE/@name = 'OLED 42' do notify(NEW_NODE)",
            )
            .unwrap();
        session
            .execute(
                "INSERT INTO product VALUES ('P4', 'OLED 42', 'LG'), \
                                            ('P5', 'QLED 55', 'Samsung')",
            )
            .unwrap();
        session
            .execute(
                "INSERT INTO vendor VALUES ('Amazon', 'P4', 1.0), ('Bestbuy', 'P4', 2.0), \
                                           ('Amazon', 'P5', 3.0), ('Bestbuy', 'P5', 4.0)",
            )
            .unwrap();
        // Both products appear, only OLED 42 matches the condition.
        let firings = log.take();
        assert_eq!(firings.len(), 1, "{mode:?}: {firings:?}");
        assert_eq!(
            node_param(&firings[0]).attr("name"),
            Some("OLED 42"),
            "{mode:?}"
        );
    }
}

/// One statement updating multiple rows fires per affected node, once each.
#[test]
fn multi_row_statement_fires_per_affected_node() {
    for mode in all_modes() {
        let (session, log) = catalog_system(mode);
        session
            .execute(
                "create trigger All after update on view('catalog')/product \
                 do notify(NEW_NODE)",
            )
            .unwrap();
        // Raise every Bestbuy price: affects CRT 15 (P1+P3) and LCD 19 (P2).
        // A non-keyed UPDATE with an arithmetic SET — one statement.
        session
            .execute("UPDATE vendor SET price = price + 1.0 WHERE vid = 'Bestbuy'")
            .unwrap();
        let mut names: Vec<String> = log
            .take()
            .iter()
            .map(|f| node_param(f).attr("name").unwrap().to_string())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec!["CRT 15".to_string(), "LCD 19".to_string()],
            "{mode:?}"
        );
    }
}

/// Unregistered action functions surface as errors at fire time.
#[test]
fn unregistered_action_errors_at_fire_time() {
    let (mut session, _log) = catalog_system(Mode::Grouped);
    session
        .execute("create trigger Bad after update on view('catalog')/product do no_such_fn()")
        .unwrap();
    let err = update_price(&mut session, "Amazon", "P1", 75.0).unwrap_err();
    assert!(err.to_string().contains("no_such_fn"), "{err}");
}

/// Triggers on unknown views or anchors are rejected at creation.
#[test]
fn unknown_view_or_anchor_rejected() {
    let (session, _log) = catalog_system(Mode::Grouped);
    assert!(session
        .execute("create trigger X after update on view('nope')/product do notify()")
        .is_err());
    assert!(session
        .execute("create trigger X after update on view('catalog')/vendor do notify()")
        .is_err());
}

/// Duplicate trigger names are rejected.
#[test]
fn duplicate_trigger_name_rejected() {
    let (session, _log) = catalog_system(Mode::Grouped);
    let stmt = "create trigger Dup after update on view('catalog')/product do notify()";
    session.execute(stmt).unwrap();
    assert!(session.execute(stmt).is_err());
}

/// Duplicate action registration is rejected instead of silently
/// overwriting the closure installed triggers reference.
#[test]
fn duplicate_action_registration_rejected() {
    let (session, _log) = catalog_system(Mode::Grouped);
    let err = session
        .register_action("notify", |_, _| Ok(()))
        .unwrap_err();
    assert!(
        matches!(err, quark_core::relational::Error::ActionExists(ref n) if n == "notify"),
        "{err:?}"
    );
}

// ---------------------------------------------------------------------
// Drop/recreate lifecycle (constants-table hygiene)
// ---------------------------------------------------------------------

fn watch(name: &str, product: &str) -> String {
    format!(
        "create trigger {name} after update on view('catalog')/product \
         where OLD_NODE/@name = '{product}' do notify(NEW_NODE)"
    )
}

/// Creating, dropping and recreating triggers returns SQL-trigger and
/// constants-row counts to baseline in every mode.
#[test]
fn drop_recreate_round_trip_restores_baseline() {
    for mode in all_modes() {
        let (mut session, log) = catalog_system(mode);
        let baseline_sql = session.quark().sql_trigger_count();
        let baseline_consts = session.quark().constants_row_count();
        assert_eq!(baseline_sql, 0, "{mode:?}");
        assert_eq!(baseline_consts, 0, "{mode:?}");

        for round in 0..3 {
            session.execute(&watch("A", "CRT 15")).unwrap();
            session.execute(&watch("B", "LCD 19")).unwrap();
            let with_sql = session.quark().sql_trigger_count();
            let with_consts = session.quark().constants_row_count();
            assert!(with_sql > 0, "{mode:?} round {round}");
            session.execute("DROP TRIGGER A").unwrap();
            session.execute("DROP TRIGGER B").unwrap();
            assert_eq!(
                session.quark().sql_trigger_count(),
                baseline_sql,
                "{mode:?} round {round}: SQL triggers leaked"
            );
            assert_eq!(
                session.quark().constants_row_count(),
                baseline_consts,
                "{mode:?} round {round}: constants rows leaked"
            );
            assert_eq!(session.quark().xml_trigger_count(), 0, "{mode:?}");
            // Recreate in the next round must translate from scratch and
            // still produce the same counts.
            let _ = (with_sql, with_consts);
        }

        // After the final drop nothing fires.
        update_price(&mut session, "Amazon", "P1", 42.0).unwrap();
        assert_eq!(log.len(), 0, "{mode:?}");
    }
}

/// Dropping the last member of a *set* in a still-live group removes its
/// constants-table row and `sets` entry — stale rows must not keep
/// joining (and must not resurrect when the set's constant is reused).
#[test]
fn dropping_last_set_member_removes_constants_row() {
    let (mut session, log) = catalog_system(Mode::Grouped);
    session.execute(&watch("A", "CRT 15")).unwrap();
    session.execute(&watch("B", "LCD 19")).unwrap();
    assert_eq!(session.quark().group_count(), 1);
    assert_eq!(session.quark().constants_row_count(), 2);

    // B leaves: its set has no members, so its constants row must go.
    session.execute("DROP TRIGGER B").unwrap();
    assert_eq!(session.quark().group_count(), 1);
    assert_eq!(
        session.quark().constants_row_count(),
        1,
        "stale constants row leaked after last set member left"
    );

    // The group still fires for the surviving set…
    update_price(&mut session, "Amazon", "P1", 75.0).unwrap();
    assert_eq!(log.take().len(), 1);
    // …and not for the dropped one.
    update_price(&mut session, "Buy.com", "P2", 190.0).unwrap();
    assert_eq!(log.len(), 0);

    // Rejoining with the same constant gets a fresh row and fires again.
    session.execute(&watch("B2", "LCD 19")).unwrap();
    assert_eq!(session.quark().constants_row_count(), 2);
    update_price(&mut session, "Buy.com", "P2", 200.0).unwrap();
    let firings = log.take();
    assert_eq!(firings.len(), 1, "{firings:?}");
    assert_eq!(firings[0].0, "B2");
}

/// Same-set sharing survives a partial drop: with two triggers on one
/// constant, dropping one keeps the row (the other still needs it).
#[test]
fn shared_set_keeps_row_until_last_member_leaves() {
    let (mut session, log) = catalog_system(Mode::Grouped);
    session.execute(&watch("A", "CRT 15")).unwrap();
    session.execute(&watch("B", "CRT 15")).unwrap();
    assert_eq!(session.quark().constants_row_count(), 1);
    session.execute("DROP TRIGGER A").unwrap();
    assert_eq!(session.quark().constants_row_count(), 1);
    update_price(&mut session, "Amazon", "P1", 75.0).unwrap();
    let firings = log.take();
    assert_eq!(firings.len(), 1);
    assert_eq!(firings[0].0, "B");
    session.execute("DROP TRIGGER B").unwrap();
    assert_eq!(session.quark().sql_trigger_count(), 0);
    assert_eq!(session.quark().constants_row_count(), 0);
}
