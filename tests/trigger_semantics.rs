//! Trigger-semantics edge cases: spurious-update suppression for
//! non-injective views (Appendix E.1 / F), condition evaluation paths, and
//! event classification corners.

mod common;

use std::collections::HashMap;

use common::{all_modes, catalog_system, node_param, update_price, Log};
use quark_core::relational::expr::BinOp;
use quark_core::relational::{Database, Value};
use quark_core::xqgm::fixtures::{minprice_path_graph, product_vendor_db};
use quark_core::xqgm::{Graph, KeyedGraph};
use quark_core::{
    Action, ActionParam, CondValue, Condition, Mode, NodePath, NodeRef, PathGraph, Quark, Step,
    TriggerSpec, XmlEvent, XmlView,
};

fn minprice_system(mode: Mode) -> (Quark, Log) {
    let db = product_vendor_db();
    let mut g = Graph::new();
    let top = minprice_path_graph(&mut g);
    let (kg, root) = KeyedGraph::normalize(&g, top, &db).unwrap();
    let mut attr_cols = HashMap::new();
    attr_cols.insert("name".to_string(), 0);
    let pg = PathGraph {
        kg,
        root,
        node_col: 1,
        attr_cols,
    };
    let mut quark = Quark::new(db, mode);
    quark.register_view(XmlView::new("minprice").with_anchor("product", pg));
    let log = Log::default();
    let sink = log.clone();
    quark.register_action("notify", move |_db: &mut Database, call| {
        sink.0
            .lock()
            .unwrap()
            .push((call.trigger.clone(), call.params.clone()));
        Ok(())
    });
    (quark, log)
}

fn minprice_trigger(name: &str) -> TriggerSpec {
    TriggerSpec {
        name: name.into(),
        event: XmlEvent::Update,
        view: "minprice".into(),
        anchor: "product".into(),
        condition: Condition::True,
        action: Action {
            function: "notify".into(),
            params: vec![ActionParam::NewNode],
        },
    }
}

/// Appendix E.1's spurious-update example: changing a non-minimum price
/// leaves the min-price node unchanged; the trigger must NOT fire. The
/// min-price view is not injective (min() is lossy), so this exercises the
/// explicit `OLD_NODE != NEW_NODE` check.
#[test]
fn non_minimum_price_change_is_suppressed() {
    for mode in all_modes() {
        let (mut quark, log) = minprice_system(mode);
        quark.create_trigger(minprice_trigger("MinWatch")).unwrap();
        // CRT 15 groups P1{100,120,150} and P3{120,140}: min is 100.
        // Raising Circuitcity P1 from 150 to 160 keeps min = 100.
        update_price(&mut quark.db, "Circuitcity", "P1", 160.0).unwrap();
        assert_eq!(log.len(), 0, "{mode:?}: spurious update fired");
        // Changing the actual minimum fires.
        update_price(&mut quark.db, "Amazon", "P1", 50.0).unwrap();
        let firings = log.take();
        assert_eq!(firings.len(), 1, "{mode:?}");
        let node = node_param(&firings[0]);
        assert_eq!(
            node.children_named("min").next().unwrap().text_content(),
            "50",
            "{mode:?}"
        );
    }
}

/// Conditions with nested step predicates cannot be pushed relationally and
/// fall back to value-space evaluation; results must be identical.
#[test]
fn residual_condition_with_step_predicate() {
    for mode in all_modes() {
        let (mut quark, log) = catalog_system(mode);
        // count(NEW_NODE/vendor[./price < 110]) >= 1 -- the nested shape
        // discussed in section 5.1.
        let pred = Condition::cmp(
            NodePath::child(NodeRef::Context, "price"),
            BinOp::Lt,
            Value::Int(110),
        );
        quark
            .create_trigger(TriggerSpec {
                name: "Cheap".into(),
                event: XmlEvent::Update,
                view: "catalog".into(),
                anchor: "product".into(),
                condition: Condition::Cmp {
                    left: CondValue::Count(NodePath {
                        base: NodeRef::New,
                        steps: vec![Step::Child("vendor".into(), Some(Box::new(pred)))],
                    }),
                    op: BinOp::Ge,
                    right: CondValue::Const(Value::Int(1)),
                },
                action: Action {
                    function: "notify".into(),
                    params: vec![ActionParam::NewNode],
                },
            })
            .unwrap();

        // 100 -> 105: still a vendor under 110 -> fires.
        update_price(&mut quark.db, "Amazon", "P1", 105.0).unwrap();
        assert_eq!(log.take().len(), 1, "{mode:?}");
        // 105 -> 130: no vendor under 110 anymore -> node updates, but the
        // condition is false.
        update_price(&mut quark.db, "Amazon", "P1", 130.0).unwrap();
        assert_eq!(log.len(), 0, "{mode:?}");
    }
}

/// Conditions touching deep OLD content force the old side to construct
/// nodes (no skeleton); verify correct OLD values flow into conditions.
#[test]
fn old_content_condition_forces_full_old_side() {
    for mode in all_modes() {
        let (mut quark, log) = catalog_system(mode);
        // Fire only when the OLD node still had a vendor under 110.
        quark
            .create_trigger(TriggerSpec {
                name: "WasCheap".into(),
                event: XmlEvent::Update,
                view: "catalog".into(),
                anchor: "product".into(),
                condition: Condition::Cmp {
                    left: CondValue::Path(NodePath {
                        base: NodeRef::Old,
                        steps: vec![
                            Step::Child("vendor".into(), None),
                            Step::Child("price".into(), None),
                        ],
                    }),
                    op: BinOp::Lt,
                    right: CondValue::Const(Value::Int(110)),
                },
                action: Action {
                    function: "notify".into(),
                    params: vec![ActionParam::OldNode],
                },
            })
            .unwrap();

        // OLD has Amazon at 100 (< 110): fires.
        update_price(&mut quark.db, "Amazon", "P1", 200.0).unwrap();
        assert_eq!(log.take().len(), 1, "{mode:?}");
        // Now OLD min is 120: does not fire.
        update_price(&mut quark.db, "Amazon", "P1", 250.0).unwrap();
        assert_eq!(log.len(), 0, "{mode:?}");
    }
}

/// INSERT conditions referencing NEW attributes are honoured.
#[test]
fn insert_condition_on_new_attribute() {
    for mode in all_modes() {
        let (mut quark, log) = catalog_system(mode);
        quark
            .create_trigger(TriggerSpec {
                name: "NewOled".into(),
                event: XmlEvent::Insert,
                view: "catalog".into(),
                anchor: "product".into(),
                condition: Condition::cmp(
                    NodePath::attr(NodeRef::New, "name"),
                    BinOp::Eq,
                    "OLED 42",
                ),
                action: Action {
                    function: "notify".into(),
                    params: vec![ActionParam::NewNode],
                },
            })
            .unwrap();
        quark
            .db
            .insert(
                "product",
                vec![
                    vec![Value::str("P4"), Value::str("OLED 42"), Value::str("LG")],
                    vec![
                        Value::str("P5"),
                        Value::str("QLED 55"),
                        Value::str("Samsung"),
                    ],
                ],
            )
            .unwrap();
        quark
            .db
            .insert(
                "vendor",
                vec![
                    vec![Value::str("Amazon"), Value::str("P4"), Value::Double(1.0)],
                    vec![Value::str("Bestbuy"), Value::str("P4"), Value::Double(2.0)],
                    vec![Value::str("Amazon"), Value::str("P5"), Value::Double(3.0)],
                    vec![Value::str("Bestbuy"), Value::str("P5"), Value::Double(4.0)],
                ],
            )
            .unwrap();
        // Both products appear, only OLED 42 matches the condition.
        let firings = log.take();
        assert_eq!(firings.len(), 1, "{mode:?}: {firings:?}");
        assert_eq!(
            node_param(&firings[0]).attr("name"),
            Some("OLED 42"),
            "{mode:?}"
        );
    }
}

/// One statement updating multiple rows fires per affected node, once each.
#[test]
fn multi_row_statement_fires_per_affected_node() {
    for mode in all_modes() {
        let (mut quark, log) = catalog_system(mode);
        quark
            .create_trigger(TriggerSpec {
                name: "All".into(),
                event: XmlEvent::Update,
                view: "catalog".into(),
                anchor: "product".into(),
                condition: Condition::True,
                action: Action {
                    function: "notify".into(),
                    params: vec![ActionParam::NewNode],
                },
            })
            .unwrap();
        // Raise every Bestbuy price: affects CRT 15 (P1+P3) and LCD 19 (P2).
        quark
            .db
            .update_where(
                "vendor",
                |r| r[0] == Value::str("Bestbuy"),
                |r| {
                    let mut v = r.to_vec();
                    let Value::Double(p) = v[2] else {
                        unreachable!()
                    };
                    v[2] = Value::Double(p + 1.0);
                    v
                },
            )
            .unwrap();
        let mut names: Vec<String> = log
            .take()
            .iter()
            .map(|f| node_param(f).attr("name").unwrap().to_string())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec!["CRT 15".to_string(), "LCD 19".to_string()],
            "{mode:?}"
        );
    }
}

/// Unregistered action functions surface as errors at fire time.
#[test]
fn unregistered_action_errors_at_fire_time() {
    let (mut quark, _log) = catalog_system(Mode::Grouped);
    quark
        .create_trigger(TriggerSpec {
            name: "Bad".into(),
            event: XmlEvent::Update,
            view: "catalog".into(),
            anchor: "product".into(),
            condition: Condition::True,
            action: Action {
                function: "no_such_fn".into(),
                params: vec![],
            },
        })
        .unwrap();
    let err = update_price(&mut quark.db, "Amazon", "P1", 75.0).unwrap_err();
    assert!(err.to_string().contains("no_such_fn"), "{err}");
}

/// Triggers on unknown views or anchors are rejected at creation.
#[test]
fn unknown_view_or_anchor_rejected() {
    let (mut quark, _log) = catalog_system(Mode::Grouped);
    let mut spec = TriggerSpec {
        name: "X".into(),
        event: XmlEvent::Update,
        view: "nope".into(),
        anchor: "product".into(),
        condition: Condition::True,
        action: Action {
            function: "notify".into(),
            params: vec![],
        },
    };
    assert!(quark.create_trigger(spec.clone()).is_err());
    spec.view = "catalog".into();
    spec.anchor = "vendor".into();
    assert!(quark.create_trigger(spec).is_err());
}

/// Duplicate trigger names are rejected.
#[test]
fn duplicate_trigger_name_rejected() {
    let (mut quark, _log) = catalog_system(Mode::Grouped);
    let spec = TriggerSpec {
        name: "Dup".into(),
        event: XmlEvent::Update,
        view: "catalog".into(),
        anchor: "product".into(),
        condition: Condition::True,
        action: Action {
            function: "notify".into(),
            params: vec![],
        },
    };
    quark.create_trigger(spec.clone()).unwrap();
    assert!(quark.create_trigger(spec).is_err());
}
