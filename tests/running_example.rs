//! End-to-end reproduction of the paper's running example (§2.2):
//!
//! ```text
//! CREATE TRIGGER Notify AFTER Update
//! ON view('catalog')/product
//! WHERE OLD_NODE/@name = 'CRT 15'
//! DO notifySmith(NEW_NODE)
//! ```
//!
//! exercised across all three translation modes, entirely through the
//! `Session::execute` statement surface.

mod common;

use common::{all_modes, catalog_system, node_param, update_price};
use quark_core::Mode;

fn notify_trigger(name: &str, product_name: &str) -> String {
    format!(
        "CREATE TRIGGER {name} AFTER UPDATE ON view('catalog')/product \
         WHERE OLD_NODE/@name = '{product_name}' DO notify(NEW_NODE)"
    )
}

/// §2.2: "the trigger will be fired not only for direct updates to a
/// <product> element, but also for updates to its descendant nodes (i.e.
/// vendors selling that product)".
#[test]
fn price_update_fires_notify_with_new_node() {
    for mode in all_modes() {
        let (mut session, log) = catalog_system(mode);
        session
            .execute(&notify_trigger("Notify", "CRT 15"))
            .unwrap();

        update_price(&mut session, "Amazon", "P1", 75.0).unwrap();

        let firings = log.take();
        assert_eq!(
            firings.len(),
            1,
            "{mode:?}: expected one firing, got {firings:?}"
        );
        assert_eq!(firings[0].0, "Notify");
        let node = node_param(&firings[0]);
        assert_eq!(node.attr("name"), Some("CRT 15"), "{mode:?}");
        // NEW_NODE carries the post-update price and all five vendors
        // ("CRT 15" groups P1 and P3).
        assert_eq!(node.children_named("vendor").count(), 5, "{mode:?}");
        let texts: Vec<String> = node
            .descendants_named("price")
            .iter()
            .map(|p| p.text_content())
            .collect();
        assert!(texts.contains(&"75".to_string()), "{mode:?}: {texts:?}");
        assert!(!texts.contains(&"100".to_string()), "{mode:?}: {texts:?}");
    }
}

/// Updates to other products do not satisfy the WHERE clause.
#[test]
fn non_matching_product_does_not_fire() {
    for mode in all_modes() {
        let (mut session, log) = catalog_system(mode);
        session
            .execute(&notify_trigger("Notify", "CRT 15"))
            .unwrap();
        update_price(&mut session, "Buy.com", "P2", 190.0).unwrap();
        assert_eq!(log.len(), 0, "{mode:?}");
    }
}

/// The §4.1 nested-predicate counter-example: inserting a vendor row for
/// P2 is an *update* of the "LCD 19" product node. A naive
/// transition-table substitution would miss it (count = 1 < 2); the
/// affected-keys algorithm must not.
#[test]
fn vendor_insert_is_an_update_of_the_product_node() {
    for mode in all_modes() {
        let (session, log) = catalog_system(mode);
        session
            .execute(&notify_trigger("NotifyLcd", "LCD 19"))
            .unwrap();
        session
            .execute("INSERT INTO vendor VALUES ('Amazon', 'P2', 500.0)")
            .unwrap();
        let firings = log.take();
        assert_eq!(firings.len(), 1, "{mode:?}");
        let node = node_param(&firings[0]);
        assert_eq!(node.children_named("vendor").count(), 3, "{mode:?}");
    }
}

/// Updating `product.mfr` — a column the view never exposes — must not
/// fire the trigger (spurious-update suppression; Appendix E.1/F).
#[test]
fn mfr_only_update_does_not_fire() {
    for mode in all_modes() {
        let (session, log) = catalog_system(mode);
        session
            .execute(&notify_trigger("Notify", "CRT 15"))
            .unwrap();
        session
            .execute("UPDATE product SET mfr = 'LG' WHERE pid = 'P1'")
            .unwrap();
        assert_eq!(log.len(), 0, "{mode:?}");
    }
}

/// A no-op UPDATE statement (price rewritten to the same value) must not
/// fire (pruned transition tables, Appendix F).
#[test]
fn noop_update_does_not_fire() {
    for mode in all_modes() {
        let (mut session, log) = catalog_system(mode);
        session
            .execute(&notify_trigger("Notify", "CRT 15"))
            .unwrap();
        update_price(&mut session, "Amazon", "P1", 100.0).unwrap(); // same price
        assert_eq!(log.len(), 0, "{mode:?}");
    }
}

/// INSERT triggers: a brand-new product group entering the view.
#[test]
fn insert_trigger_fires_for_new_qualifying_product() {
    for mode in all_modes() {
        let (session, log) = catalog_system(mode);
        session
            .execute(
                "CREATE TRIGGER NewProduct AFTER INSERT ON view('catalog')/product \
                 DO notify(NEW_NODE)",
            )
            .unwrap();

        session
            .execute("INSERT INTO product VALUES ('P4', 'OLED 42', 'LG')")
            .unwrap();
        // One vendor: still below the count(*) >= 2 threshold.
        session
            .execute("INSERT INTO vendor VALUES ('Amazon', 'P4', 900.0)")
            .unwrap();
        assert_eq!(log.len(), 0, "{mode:?}: one vendor is not enough");
        // Second vendor pushes it over the threshold: the node appears.
        session
            .execute("INSERT INTO vendor VALUES ('Bestbuy', 'P4', 950.0)")
            .unwrap();
        let firings = log.take();
        assert_eq!(firings.len(), 1, "{mode:?}");
        let node = node_param(&firings[0]);
        assert_eq!(node.attr("name"), Some("OLED 42"), "{mode:?}");
        assert_eq!(node.children_named("vendor").count(), 2, "{mode:?}");
    }
}

/// DELETE triggers: the node leaves the view when its vendor count drops
/// below two, and OLD_NODE carries the pre-statement content.
#[test]
fn delete_trigger_fires_when_product_leaves_view() {
    for mode in all_modes() {
        let (session, log) = catalog_system(mode);
        session
            .execute(
                "CREATE TRIGGER Gone AFTER DELETE ON view('catalog')/product \
                 WHERE OLD_NODE/@name = 'LCD 19' DO notify(OLD_NODE)",
            )
            .unwrap();

        session
            .execute("DELETE FROM vendor WHERE vid = 'Buy.com' AND pid = 'P2'")
            .unwrap();
        let firings = log.take();
        assert_eq!(firings.len(), 1, "{mode:?}");
        let node = node_param(&firings[0]);
        assert_eq!(node.attr("name"), Some("LCD 19"), "{mode:?}");
        assert_eq!(node.children_named("vendor").count(), 2, "{mode:?}");
    }
}

/// Deleting one of three vendors keeps the product in the view: an UPDATE,
/// not a DELETE.
#[test]
fn partial_vendor_delete_is_an_update_not_a_delete() {
    for mode in all_modes() {
        let (session, log) = catalog_system(mode);
        session.execute(&notify_trigger("Upd", "CRT 15")).unwrap();
        session
            .execute(
                "CREATE TRIGGER Gone AFTER DELETE ON view('catalog')/product \
                 DO notify(OLD_NODE)",
            )
            .unwrap();
        session
            .execute("DELETE FROM vendor WHERE vid = 'Amazon' AND pid = 'P1'")
            .unwrap();
        let firings = log.take();
        assert_eq!(firings.len(), 1, "{mode:?}: {firings:?}");
        assert_eq!(firings[0].0, "Upd", "{mode:?}");
        let node = node_param(&firings[0]);
        assert_eq!(node.children_named("vendor").count(), 4, "{mode:?}");
    }
}

/// Grouped modes share SQL triggers across structurally similar XML
/// triggers; ungrouped does not (§5.1 / Fig. 17's premise).
#[test]
fn grouping_shares_sql_triggers() {
    let (grouped, _) = catalog_system(Mode::Grouped);
    let (ungrouped, _) = catalog_system(Mode::Ungrouped);
    for (i, name) in ["CRT 15", "LCD 19", "Plasma 50"].iter().enumerate() {
        grouped
            .execute(&notify_trigger(&format!("g{i}"), name))
            .unwrap();
        ungrouped
            .execute(&notify_trigger(&format!("u{i}"), name))
            .unwrap();
    }
    assert_eq!(grouped.quark().group_count(), 1);
    assert_eq!(ungrouped.quark().group_count(), 3);
    assert_eq!(
        grouped.quark().sql_trigger_count() * 3,
        ungrouped.quark().sql_trigger_count()
    );
    // All three XML triggers are registered in both systems.
    assert_eq!(grouped.quark().xml_trigger_count(), 3);
    assert_eq!(ungrouped.quark().xml_trigger_count(), 3);
}

/// Two triggers with the same constant share a constants-table row; both
/// fire on a matching update.
#[test]
fn same_constant_triggers_share_set_and_both_fire() {
    let (mut session, log) = catalog_system(Mode::Grouped);
    session.execute(&notify_trigger("T1", "CRT 15")).unwrap();
    session.execute(&notify_trigger("T2", "CRT 15")).unwrap();
    session.execute(&notify_trigger("T3", "LCD 19")).unwrap();
    update_price(&mut session, "Amazon", "P1", 75.0).unwrap();
    let mut fired: Vec<String> = log.take().into_iter().map(|f| f.0).collect();
    fired.sort();
    assert_eq!(fired, vec!["T1".to_string(), "T2".to_string()]);
}

/// Dropping the last trigger of a group removes its SQL triggers.
#[test]
fn drop_trigger_cleans_up_group() {
    let (mut session, log) = catalog_system(Mode::Grouped);
    session.execute(&notify_trigger("T1", "CRT 15")).unwrap();
    let sql_count = session.quark().sql_trigger_count();
    assert!(sql_count > 0);
    session.execute("DROP TRIGGER T1").unwrap();
    assert_eq!(session.quark().sql_trigger_count(), 0);
    update_price(&mut session, "Amazon", "P1", 75.0).unwrap();
    assert_eq!(log.len(), 0);
}
