//! Durability & recovery: crash-and-reopen round trips through the
//! `quark-storage` engine, checked differentially against an in-memory
//! session executing the byte-identical statement stream.
//!
//! The contract under test (see README "Durability & recovery"): a
//! recovered system is identical to the crashed one *at its last
//! committed statement boundary* — tables, views, trigger groups and the
//! compile cache all come back, trigger groups re-arm with **zero**
//! re-translations, and a torn or corrupt WAL tail costs exactly the
//! statements whose commit records it destroyed, never more.
//!
//! Dropping a durable session without `close()` is crash-equivalent (no
//! final checkpoint runs), so `drop` + reopen simulates `kill -9` for
//! everything above the OS page cache.

mod common;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

use common::{all_modes, Log};
use proptest::prelude::*;
use quark_core::relational::{Database, Value};
use quark_core::storage::SyncMode;
use quark_core::{Mode, Session, SessionPool, StatementResult};

fn tmp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::AtomicU64;
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("quark-durability-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The Figure-2 schema and data, as statements (both the durable session
/// and the in-memory oracle execute exactly this text).
const SETUP: &[&str] = &[
    "CREATE TABLE product (pid TEXT PRIMARY KEY, pname TEXT, mfr TEXT)",
    "CREATE TABLE vendor (vid TEXT, pid TEXT, price DOUBLE, \
     PRIMARY KEY (vid, pid))",
    "INSERT INTO product VALUES ('P1', 'CRT 15', 'Samsung'), \
     ('P2', 'LCD 19', 'LG'), ('P3', 'OLED 42', 'LG')",
    "INSERT INTO vendor VALUES ('Amazon', 'P1', 100.0), \
     ('Bestbuy', 'P1', 120.0), ('Amazon', 'P2', 250.0), \
     ('Buy.com', 'P2', 240.0), ('Bestbuy', 'P3', 899.0)",
];

/// The paper's Figure-3 view, through the XQuery frontend.
const CATALOG_VIEW: &str = r#"
    create view catalog as {
      <catalog>{
        for $prodname in distinct(view("default")/product/row/pname)
        let $products := view("default")/product/row[./pname = $prodname]
        let $vendors := view("default")/vendor/row[./pid = $products/pid]
        where count($vendors) >= 2
        return <product name={$prodname}>
          { for $vendor in $vendors return <vendor>{$vendor/*}</vendor> }
        </product>
      }</catalog>
    }"#;

const TRIGGERS: &[&str] = &[
    "CREATE TRIGGER NotifyP1 AFTER Update ON view('catalog')/product \
     WHERE OLD_NODE/@name = 'CRT 15' DO notify(NEW_NODE)",
    "CREATE TRIGGER NotifyGone AFTER Delete ON view('catalog')/product \
     DO notify(OLD_NODE)",
];

/// Register the recording `notify` action **with a declared (empty) write
/// set**, so trigger-bearing DML stays on the footprint-latched path —
/// the path whose commit point is the WAL. Action closures are
/// process-local and must be re-registered after every reopen.
fn arm(session: &Session, log: &Log) {
    let sink = log.clone();
    session
        .register_action_with_writes("notify", Vec::<String>::new(), move |_db, call| {
            sink.0
                .lock()
                .unwrap()
                .push((call.trigger.clone(), call.params.clone()));
            Ok(())
        })
        .expect("register notify");
}

/// Full setup on a fresh session: schema, data, view, action, triggers.
fn install(session: &Session, log: &Log) {
    for s in SETUP {
        session.execute(s).expect("setup");
    }
    session.execute(CATALOG_VIEW).expect("create view");
    arm(session, log);
    for t in TRIGGERS {
        session.execute(t).expect("create trigger");
    }
}

/// Canonical observable state: both base tables (primary-key order) and
/// the materialized view anchor (canonical key order).
fn dump(session: &Session) -> Vec<StatementResult> {
    [
        "SELECT * FROM product",
        "SELECT * FROM vendor",
        "MATERIALIZE view('catalog')/product",
    ]
    .iter()
    .map(|s| session.execute(s).expect("dump"))
    .collect()
}

/// Rendered firings, comparable across systems. Sorted: relative order
/// *across distinct triggers* on one statement is not a contract (the
/// differential-oracle suite compares sets for the same reason), and a
/// recovered system re-arms triggers in signature order, not creation
/// order.
fn firings(log: &Log) -> Vec<(String, Vec<String>)> {
    let mut out: Vec<(String, Vec<String>)> = log
        .take()
        .into_iter()
        .map(|(t, params)| (t, params.iter().map(|p| p.to_string()).collect()))
        .collect();
    out.sort();
    out
}

fn open(dir: &Path, mode: Mode, sync: SyncMode) -> Session {
    quark_xquery::open_session_with(dir, mode, sync).expect("open durable session")
}

/// Warm restart: everything comes back — tables, the view, both triggers,
/// the compile cache — and nothing is re-translated.
#[test]
fn warm_restart_recovers_everything_without_retranslation() {
    for mode in all_modes() {
        let dir = tmp_dir("warm");
        let log = Log::default();
        let session = open(&dir, mode, SyncMode::Always);
        install(&session, &log);
        session
            .execute("UPDATE vendor SET price = 75.0 WHERE vid = 'Amazon' AND pid = 'P1'")
            .expect("update");
        assert_eq!(log.len(), 1, "{mode:?}: trigger fires before restart");
        assert!(
            session.quark().translations() > 0,
            "{mode:?}: cold open must translate"
        );
        let before = dump(&session);
        session.close().expect("clean close");

        let log = Log::default();
        let session = open(&dir, mode, SyncMode::Always);
        assert_eq!(
            session.quark().translations(),
            0,
            "{mode:?}: warm restart must not re-translate"
        );
        arm(&session, &log);
        assert_eq!(dump(&session), before, "{mode:?}: recovered state differs");

        // The re-armed trigger still fires on the same shape of change.
        session
            .execute("UPDATE vendor SET price = 60.0 WHERE vid = 'Amazon' AND pid = 'P1'")
            .expect("post-restart update");
        assert_eq!(log.len(), 1, "{mode:?}: re-armed trigger must fire");

        // The compile cache came back warm too: a structurally identical
        // new trigger costs zero translations.
        session
            .execute(
                "CREATE TRIGGER NotifyP3 AFTER Update ON view('catalog')/product \
                 WHERE OLD_NODE/@name = 'OLED 42' DO notify(NEW_NODE)",
            )
            .expect("new trigger");
        assert_eq!(
            session.quark().translations(),
            0,
            "{mode:?}: persisted compile cache must absorb the new trigger"
        );
        session.close().expect("close");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Crash (drop without `close`) after a committed statement stream: the
/// recovered system is differentially identical to an in-memory session
/// that executed the same text — in every translation mode.
#[test]
fn crashed_session_recovers_to_last_committed_boundary() {
    let stream = [
        "UPDATE vendor SET price = 75.0 WHERE vid = 'Amazon' AND pid = 'P1'",
        "INSERT INTO vendor VALUES ('Circuitcity', 'P3', 850.0)",
        "DELETE FROM vendor WHERE vid = 'Bestbuy' AND pid = 'P1'",
        "UPDATE product SET pname = 'CRT 17' WHERE pid = 'P1'",
        "INSERT INTO product VALUES ('P4', 'Plasma 50', 'LG')",
    ];
    for mode in all_modes() {
        let dir = tmp_dir("crash");
        let oracle = quark_xquery::session(Database::new(), mode);
        let oracle_log = Log::default();
        install(&oracle, &oracle_log);

        let log = Log::default();
        let session = open(&dir, mode, SyncMode::Always);
        install(&session, &log);
        for s in &stream {
            let a = session.execute(s).expect("durable");
            let b = oracle.execute(s).expect("oracle");
            assert_eq!(a, b, "{mode:?}: result mismatch on `{s}`");
        }
        assert_eq!(firings(&log), firings(&oracle_log), "{mode:?}: firings");
        drop(session); // crash: no close, no final checkpoint

        let session = open(&dir, mode, SyncMode::Always);
        assert_eq!(
            dump(&session),
            dump(&oracle),
            "{mode:?}: recovered state differs from committed stream"
        );
        assert_eq!(session.quark().translations(), 0, "{mode:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A panic in the middle of a trigger cascade: the panicking statement
/// never reaches its commit record, so recovery lands exactly on the
/// boundary *before* it — partial in-memory effects are not durable.
#[test]
fn mid_cascade_panic_loses_only_the_panicking_statement() {
    let dir = tmp_dir("panic");
    let panic_flag = Arc::new(AtomicBool::new(false));
    let session = open(&dir, Mode::Grouped, SyncMode::Always);
    for s in SETUP {
        session.execute(s).expect("setup");
    }
    session.execute(CATALOG_VIEW).expect("view");
    let flag = Arc::clone(&panic_flag);
    session
        .register_action_with_writes("notify", Vec::<String>::new(), move |_db, _call| {
            if flag.load(Ordering::SeqCst) {
                panic!("injected mid-cascade crash");
            }
            Ok(())
        })
        .expect("register");
    session.execute(TRIGGERS[0]).expect("trigger");

    // One committed boundary...
    session
        .execute("UPDATE vendor SET price = 75.0 WHERE vid = 'Amazon' AND pid = 'P1'")
        .expect("committed update");
    let committed = dump(&session);

    // ...then a statement whose cascade dies half-way through.
    panic_flag.store(true, Ordering::SeqCst);
    let victim = session.fork();
    let crashed = thread::spawn(move || {
        victim
            .execute("UPDATE vendor SET price = 50.0 WHERE vid = 'Amazon' AND pid = 'P1'")
            .expect("unreachable: cascade panics first");
    })
    .join();
    assert!(crashed.is_err(), "injected panic must propagate");
    drop(session); // crash the process state too: no checkpoint

    let session = open(&dir, Mode::Grouped, SyncMode::Always);
    assert_eq!(
        dump(&session),
        committed,
        "recovery must land on the boundary before the panicking statement"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn newest_wal_segment(dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir.join("wal"))
        .expect("wal dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "wal"))
        .collect();
    segs.sort();
    segs.pop().expect("at least one segment")
}

/// A way of damaging the WAL tail in place.
type Mutilation = fn(&mut Vec<u8>);

/// A torn (truncated) or corrupt (bit-flipped) WAL tail costs exactly the
/// statement whose records it destroyed; everything before it survives,
/// and the recovered system keeps accepting writes.
#[test]
fn torn_or_corrupt_wal_tail_discards_only_the_damaged_statement() {
    let mutilations: [(&str, Mutilation); 2] = [
        ("torn", |data| {
            let n = data.len() - 5;
            data.truncate(n);
        }),
        ("corrupt", |data| {
            let n = data.len() - 1;
            data[n] ^= 0x40;
        }),
    ];
    let updates = [
        "UPDATE vendor SET price = 75.0 WHERE vid = 'Amazon' AND pid = 'P1'",
        "UPDATE vendor SET price = 76.0 WHERE vid = 'Bestbuy' AND pid = 'P1'",
        "UPDATE vendor SET price = 77.0 WHERE vid = 'Amazon' AND pid = 'P2'",
    ];
    for (tag, mutilate) in mutilations {
        let dir = tmp_dir(tag);
        let log = Log::default();
        let session = open(&dir, Mode::Grouped, SyncMode::Always);
        install(&session, &log);
        // Three latched statements land in the WAL after the last
        // checkpoint (trigger DDL checkpoints and truncates the log).
        for s in &updates {
            session.execute(s).expect("update");
        }
        drop(session); // crash

        let seg = newest_wal_segment(&dir);
        let mut data = std::fs::read(&seg).expect("read segment");
        mutilate(&mut data);
        std::fs::write(&seg, &data).expect("write back");

        // Oracle: the same stream minus the destroyed final statement.
        let oracle = quark_xquery::session(Database::new(), Mode::Grouped);
        install(&oracle, &Log::default());
        for s in &updates[..updates.len() - 1] {
            oracle.execute(s).expect("oracle update");
        }

        let log = Log::default();
        let session = open(&dir, Mode::Grouped, SyncMode::Always);
        arm(&session, &log);
        assert_eq!(
            dump(&session),
            dump(&oracle),
            "{tag}: recovery must keep every undamaged statement"
        );

        // The recovered log accepts and persists new commits.
        session.execute(updates[2]).expect("re-apply");
        oracle.execute(updates[2]).expect("oracle re-apply");
        session.close().expect("close");
        let session = open(&dir, Mode::Grouped, SyncMode::Always);
        assert_eq!(dump(&session), dump(&oracle), "{tag}: post-recovery write");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// `STATS` through the front door: sorted counter rows, including the
/// storage counters — and, with `SyncMode::Always`, proof that commits
/// actually fsync.
#[test]
fn stats_statement_reports_storage_counters() {
    let dir = tmp_dir("stats");
    let log = Log::default();
    let session = open(&dir, Mode::Grouped, SyncMode::Always);
    install(&session, &log);
    session
        .execute("UPDATE vendor SET price = 75.0 WHERE vid = 'Amazon' AND pid = 'P1'")
        .expect("update");

    let StatementResult::Rows { columns, rows } = session.execute("STATS").expect("stats") else {
        panic!("STATS must return rows");
    };
    assert_eq!(columns, ["counter", "value"]);
    let names: Vec<String> = rows
        .iter()
        .map(|r| match &r[0] {
            Value::Str(s) => s.to_string(),
            other => panic!("counter name must be a string, got {other:?}"),
        })
        .collect();
    assert!(
        names.windows(2).all(|w| w[0] < w[1]),
        "counters must be sorted: {names:?}"
    );
    let get = |name: &str| -> i64 {
        let i = names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("missing counter `{name}` in {names:?}"));
        match rows[i][1] {
            Value::Int(v) => v,
            ref other => panic!("counter value must be an int, got {other:?}"),
        }
    };
    assert!(get("statements") > 0);
    assert!(get("triggers_fired") > 0);
    assert!(get("checkpoints") > 0, "DDL commits checkpoint");
    assert!(
        get("wal_bytes_written") > 0,
        "latched DML commits to the WAL"
    );
    assert!(get("wal_fsyncs") > 0, "SyncMode::Always must fsync commits");
    assert!(
        get("group_commit_batches") > 0,
        "every durable commit rides some fsync batch"
    );
    assert!(
        get("latch_exclusive_acquisitions") > 0,
        "latched DML takes its write set exclusive"
    );
    assert!(
        get("latch_shared_acquisitions") > 0,
        "the trigger cascade latches its read set shared"
    );
    let _ = get("pages_evicted"); // present even when the pool never fills
    session.close().expect("close");

    // Reopen: recovery time is measured and surfaced.
    let session = open(&dir, Mode::Grouped, SyncMode::Always);
    let StatementResult::Rows { rows, .. } = session.execute("STATS").expect("stats") else {
        panic!("STATS must return rows");
    };
    assert!(
        rows.iter().any(|r| r[0] == Value::str("recovery_ms")),
        "recovery_ms must be reported"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Group commit at the session layer: concurrent `SyncMode::Always`
/// writers on disjoint tables have their commit records coalesced into
/// shared fsyncs — strictly fewer fsyncs than committed statements — and
/// every acknowledged statement still survives a crash. The `Always`
/// contract is untouched (no ack before its commit record is durable);
/// only the fsync *count* changes.
#[test]
fn concurrent_always_writers_share_fsyncs_and_recover() {
    const WRITERS: usize = 4;
    const STATEMENTS: usize = 50;
    let dir = tmp_dir("group-commit");
    {
        let session = open(&dir, Mode::Grouped, SyncMode::Always);
        for t in 0..WRITERS {
            session
                .execute(&format!(
                    "CREATE TABLE gc{t} (id INT PRIMARY KEY, payload TEXT)"
                ))
                .expect("create shard table");
        }
        let fsyncs_before = session.quark().stats().wal_fsyncs;
        let pool = SessionPool::new(session);
        let barrier = Arc::new(Barrier::new(WRITERS));
        let threads: Vec<_> = (0..WRITERS)
            .map(|t| {
                let session = pool.session();
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    barrier.wait();
                    for i in 0..STATEMENTS {
                        session
                            .execute(&format!("INSERT INTO gc{t} VALUES ({i}, 'p{i}')"))
                            .expect("durable insert");
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().expect("writer thread");
        }
        let session = pool.session();
        let stats = session.quark().stats();
        let committed = (WRITERS * STATEMENTS) as u64;
        assert!(
            stats.wal_fsyncs - fsyncs_before < committed,
            "group commit must coalesce: {} fsyncs for {committed} commits",
            stats.wal_fsyncs - fsyncs_before
        );
        assert!(
            stats.group_commit_batches >= 1,
            "at least one commit batch must be recorded: {stats:?}"
        );
        assert!(
            stats.group_commit_batches <= stats.wal_fsyncs,
            "every batch costs exactly one fsync: {stats:?}"
        );
        // Crash: drop every handle without `close()`.
    }

    // Recovery: every acknowledged statement is on disk.
    let session = open(&dir, Mode::Grouped, SyncMode::Always);
    for t in 0..WRITERS {
        let StatementResult::Rows { rows, .. } = session
            .execute(&format!("SELECT id FROM gc{t}"))
            .expect("select after recovery")
        else {
            panic!("expected rows");
        };
        assert_eq!(
            rows.len(),
            STATEMENTS,
            "table gc{t} lost acknowledged inserts across the crash"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- randomized recovery at every statement boundary --------------------

const VIDS: [&str; 3] = ["Amazon", "Bestbuy", "Buy.com"];
const PIDS: [&str; 3] = ["P1", "P2", "P3"];
const NAMES: [&str; 4] = ["CRT 15", "LCD 19", "OLED 42", "Plasma 50"];

/// A randomized, always-applicable operation (a subset of the
/// differential-oracle alphabet).
#[derive(Debug, Clone)]
enum Op {
    /// Set vendor (vid, pid) to price — insert or update as needed.
    SetVendor(usize, usize, u32),
    /// Remove vendor (vid, pid) if present.
    DropVendor(usize, usize),
    /// Rename product pid (cycling through a name pool).
    Rename(usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..3usize, 0..3usize, 1..400u32).prop_map(|(v, p, c)| Op::SetVendor(v, p, c)),
        (0..3usize, 0..3usize).prop_map(|(v, p)| Op::DropVendor(v, p)),
        (0..3usize, 0..4usize).prop_map(|(p, n)| Op::Rename(p, n)),
    ]
}

/// Render an op as one SQL statement, decided against the current oracle
/// state (identical to the durable session's state at this point).
fn statement_for(db: &Database, op: &Op) -> String {
    match op {
        Op::SetVendor(v, p, cents) => {
            let (vid, pid) = (VIDS[*v], PIDS[*p]);
            let price = *cents as f64 / 2.0;
            let key = [Value::str(vid), Value::str(pid)];
            if db.table("vendor").expect("vendor").get(&key).is_some() {
                format!(
                    "UPDATE vendor SET price = {price:?} \
                     WHERE vid = '{vid}' AND pid = '{pid}'"
                )
            } else {
                format!("INSERT INTO vendor VALUES ('{vid}', '{pid}', {price:?})")
            }
        }
        Op::DropVendor(v, p) => format!(
            "DELETE FROM vendor WHERE vid = '{}' AND pid = '{}'",
            VIDS[*v], PIDS[*p]
        ),
        Op::Rename(p, n) => format!(
            "UPDATE product SET pname = '{}' WHERE pid = '{}'",
            NAMES[*n], PIDS[*p]
        ),
    }
}

proptest! {
    // Deterministic in CI; sweep PROPTEST_SEED manually for wider hunts.
    #![proptest_config(ProptestConfig {
        cases: 6,
        rng_seed: Some(0x1cde_2005_0007),
        ..ProptestConfig::default()
    })]

    /// Crash-and-recover after **every** statement of a random stream, in
    /// every translation mode: each recovered prefix is differentially
    /// identical to the in-memory oracle, firings included, and the
    /// recovered session keeps executing the rest of the stream.
    #[test]
    fn recovery_lands_on_every_statement_boundary(
        ops in proptest::collection::vec(op_strategy(), 1..7)
    ) {
        for mode in all_modes() {
            let dir = tmp_dir("prop");
            let oracle = quark_xquery::session(Database::new(), mode);
            let oracle_log = Log::default();
            install(&oracle, &oracle_log);

            let mut log = Log::default();
            let mut session = open(&dir, mode, SyncMode::Never);
            install(&session, &log);

            for op in &ops {
                let stmt = statement_for(&oracle.database(), op);
                let a = session.execute(&stmt).expect("durable");
                let b = oracle.execute(&stmt).expect("oracle");
                prop_assert_eq!(a, b, "{:?}: result mismatch on `{}`", mode, &stmt);
                prop_assert_eq!(firings(&log), firings(&oracle_log),
                    "{:?}: firings diverge on `{}`", mode, &stmt);

                // Crash here and recover: this boundary must be durable
                // (no fsync needed for an in-process crash — the bytes
                // reached the OS).
                drop(session);
                session = open(&dir, mode, SyncMode::Never);
                prop_assert_eq!(session.quark().translations(), 0);
                log = Log::default();
                arm(&session, &log);
                prop_assert_eq!(dump(&session), dump(&oracle),
                    "{:?}: recovered prefix differs after `{}`", mode, &stmt);
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
