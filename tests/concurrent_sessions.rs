//! Concurrent-session semantics: N reader threads + 1 writer over one
//! shared system.
//!
//! The sharded statement surface promises that read statements (`SELECT`,
//! `MATERIALIZE`, plus raw [`Session::snapshot`] access) always observe
//! some *statement-boundary* state — never a state from inside a firing
//! cascade. This suite proves it differentially: a single-threaded replay
//! of the same statement sequence enumerates every legal boundary state,
//! and every concurrent observation must be a member of that set. The
//! writer drives a depth-3 trigger cascade (view trigger → audit1 →
//! audit2 → audit3), so a torn read would show audit tables out of step
//! with the base table or with each other.

mod common;

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use common::catalog_path;
use quark_core::relational::{Database, Event, SqlTrigger, TriggerBody, Value};
use quark_core::xqgm::fixtures::product_vendor_db;
use quark_core::{Mode, Quark, Session, SessionPool, StatementResult, XmlView};
use quark_xquery::XQueryFrontend;

/// Number of statements the writer executes.
const WRITES: usize = 40;
/// Reader threads hammering the snapshot surface.
const READERS: usize = 4;

/// One observation of the whole system: the hot vendor price plus the
/// three audit-table cardinalities filled in by the cascade. Constructed
/// from a single snapshot, so consistency spans all four tables.
type Observation = (String, usize, usize, usize);

/// Build the catalog system with a depth-3 cascade behind the XML trigger:
/// the trigger's action inserts into `audit1`; SQL triggers chain the
/// insert into `audit2` and then `audit3`. All three audits move *inside*
/// the firing statement, so any mid-statement read would catch them out
/// of step.
fn cascade_system() -> Session {
    let db = product_vendor_db();
    let pg = catalog_path(&db);
    let mut quark = Quark::new(db, Mode::Grouped);
    quark.register_view(XmlView::new("catalog").with_anchor("product", pg));
    let session = Session::with_frontend(quark, Box::new(XQueryFrontend));
    for t in ["audit1", "audit2", "audit3"] {
        session
            .execute(&format!("CREATE TABLE {t} (seq INT PRIMARY KEY)"))
            .expect("audit table");
    }
    {
        let mut db = session.database_mut();
        for (from, to) in [("audit1", "audit2"), ("audit2", "audit3")] {
            let to = to.to_string();
            db.create_trigger(SqlTrigger {
                name: format!("chain_{from}"),
                table: from.to_string(),
                event: Event::Insert,
                body: TriggerBody::Native(Arc::new(move |db, trans| {
                    for r in &trans.inserted {
                        db.insert_row(&to, r.to_vec())?;
                    }
                    Ok(())
                })),
            })
            .expect("chain trigger");
        }
    }
    session
        .register_action("audit", |db, _call| {
            let seq = db.table("audit1").map(|t| t.len()).unwrap_or(0) as i64;
            db.insert_row("audit1", vec![Value::Int(seq)])
        })
        .expect("action");
    // A small grouped corpus: the hot trigger plus structurally similar
    // spectators watching other constants (the §5.1 constants table joins
    // on every firing).
    for (name, watched) in [
        ("Watch", "CRT 15"),
        ("Spectator1", "LCD 19"),
        ("Spectator2", "No Such"),
    ] {
        session
            .execute(&format!(
                "create trigger {name} after update on view('catalog')/product \
                 where OLD_NODE/@name = '{watched}' do audit(NEW_NODE)"
            ))
            .expect("xml trigger");
    }
    session
}

/// The writer's `i`-th statement: a keyed price update on the hot vendor
/// row (its product, CRT 15, has three vendors, so the view node exists
/// and the Watch trigger fires once per statement).
fn write_statement(i: usize) -> String {
    format!(
        "UPDATE vendor SET price = {:?} WHERE vid = 'Amazon' AND pid = 'P1'",
        50.0 + i as f64
    )
}

/// Observe the system from one consistent snapshot.
fn observe(db: &Database) -> Observation {
    let price = db
        .table("vendor")
        .unwrap()
        .get(&[Value::str("Amazon"), Value::str("P1")])
        .map(|r| format!("{:?}", r[2]))
        .unwrap_or_default();
    let len = |t: &str| db.table(t).map(|tb| tb.len()).unwrap_or(0);
    (price, len("audit1"), len("audit2"), len("audit3"))
}

/// Render a MATERIALIZE result for set membership comparison.
fn render_xml(result: StatementResult) -> String {
    let StatementResult::Xml(nodes) = result else {
        panic!("expected XML result");
    };
    nodes
        .iter()
        .map(|n| n.to_xml())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn concurrent_readers_observe_only_statement_boundary_states() {
    // Single-threaded replay: enumerate every legal boundary state.
    let oracle = cascade_system();
    let mut legal_observations: BTreeSet<Observation> = BTreeSet::new();
    let mut legal_materializations: BTreeSet<String> = BTreeSet::new();
    let mut legal_selects: BTreeSet<usize> = BTreeSet::new();
    let mut record = |s: &Session| {
        legal_observations.insert(observe(&s.database()));
        legal_materializations.insert(render_xml(
            s.execute("MATERIALIZE view('catalog')/product").unwrap(),
        ));
        let StatementResult::Rows { rows, .. } = s.execute("SELECT seq FROM audit3").unwrap()
        else {
            panic!()
        };
        legal_selects.insert(rows.len());
    };
    record(&oracle);
    for i in 0..WRITES {
        oracle.execute(&write_statement(i)).expect("oracle write");
        record(&oracle);
    }
    assert_eq!(
        legal_observations.len(),
        WRITES + 1,
        "each statement produces a distinct boundary state"
    );

    // Concurrent run of the same sequence on a fresh system.
    let pool = SessionPool::new(cascade_system());
    let done = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for r in 0..READERS {
        let session = pool.session();
        let done = Arc::clone(&done);
        let legal_obs = legal_observations.clone();
        let legal_mat = legal_materializations.clone();
        let legal_sel = legal_selects.clone();
        readers.push(thread::spawn(move || {
            let mut checks = 0usize;
            while !done.load(Ordering::Acquire) || checks == 0 {
                // Raw snapshot: one consistent state across all tables.
                let snap = session.snapshot();
                let seen = observe(snap.database());
                assert!(
                    legal_obs.contains(&seen),
                    "reader {r} observed a non-boundary state: {seen:?}"
                );
                // Statement surface: SELECT and MATERIALIZE against the
                // same published snapshots.
                if checks.is_multiple_of(3) {
                    let mat = render_xml(
                        session
                            .execute("MATERIALIZE view('catalog')/product")
                            .unwrap(),
                    );
                    assert!(
                        legal_mat.contains(&mat),
                        "reader {r} materialized a non-boundary view state"
                    );
                } else {
                    let StatementResult::Rows { rows, .. } =
                        session.execute("SELECT seq FROM audit3").unwrap()
                    else {
                        panic!()
                    };
                    assert!(
                        legal_sel.contains(&rows.len()),
                        "reader {r} selected a non-boundary audit count: {}",
                        rows.len()
                    );
                }
                checks += 1;
                thread::yield_now();
            }
            checks
        }));
    }

    let writer = {
        let session = pool.session();
        thread::spawn(move || {
            for i in 0..WRITES {
                session.execute(&write_statement(i)).expect("write");
                thread::yield_now();
            }
        })
    };
    writer.join().expect("writer");
    done.store(true, Ordering::Release);
    let total_checks: usize = readers.into_iter().map(|r| r.join().expect("reader")).sum();
    assert!(total_checks >= READERS, "readers made progress");

    // Final state equals the oracle's final state exactly.
    let session = pool.into_session();
    assert_eq!(observe(&session.database()), observe(&oracle.database()));
    let expected_fires = WRITES;
    assert_eq!(
        session.database().table("audit3").unwrap().len(),
        expected_fires,
        "depth-3 cascade ran once per statement"
    );
}

/// Forked handles on other threads share writes and snapshots; reads
/// scale without holding the write lock.
#[test]
fn forks_read_concurrently_while_a_writer_runs() {
    let session = cascade_system();
    let done = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();
    for _ in 0..READERS {
        let reader = session.fork();
        let done = Arc::clone(&done);
        threads.push(thread::spawn(move || {
            let mut n = 0usize;
            // `|| n == 0`: on a small machine the writer can finish before
            // this thread is first scheduled; every reader still performs
            // at least one full read.
            while !done.load(Ordering::Acquire) || n == 0 {
                let StatementResult::Rows { rows, .. } = reader
                    .execute("SELECT vid FROM vendor WHERE pid = 'P1'")
                    .unwrap()
                else {
                    panic!()
                };
                assert_eq!(rows.len(), 3, "P1 always keeps its three vendors");
                n += 1;
            }
            n
        }));
    }
    for i in 0..WRITES {
        session.execute(&write_statement(i)).expect("write");
    }
    done.store(true, Ordering::Release);
    for t in threads {
        assert!(t.join().expect("reader") > 0);
    }
}

/// The compile-time gate the CI `-D warnings` check rides on: the whole
/// session stack must stay `Send + Sync` (a regression here fails the
/// build, not just this test).
#[test]
fn session_stack_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
    assert_send_sync::<SessionPool>();
    assert_send_sync::<Quark>();
    assert_send_sync::<Database>();
    assert_send_sync::<XQueryFrontend>();
}
