//! Footprint-scoped parallel writers: the differential and fault-injection
//! suite for the per-table latch write path.
//!
//! The contract under test (see README § Concurrency model): writers whose
//! trigger footprints are pairwise disjoint run in parallel and produce a
//! final state identical to *some* serial order of the same statements;
//! writers with overlapping footprints serialize on the contended latches
//! without losing updates; a panic inside a trigger cascade — on either
//! the latched or the global write path — must not wedge the system for
//! other writers; and `Session::execute_batch` coalescing is semantically
//! exact at statement-trigger granularity.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;

use quark_bench::{build_sharded, build_shared_read, ShardSpec};
use quark_core::relational::{Row, Value};
use quark_core::{Mode, Session, SessionPool, StatementResult};
use quark_xquery::viewtree::{LevelSpec, TopBinding, ViewSpec};

/// All rows of `table`, in primary-key order.
fn dump(session: &Session, table: &str) -> Vec<Row> {
    session
        .database()
        .table(table)
        .map(|t| t.iter().cloned().collect())
        .unwrap_or_default()
}

/// N writers on pairwise-disjoint shards, run concurrently, must leave the
/// database in exactly the state a serial replay of the same per-writer
/// statement sequences produces. Disjointness makes every interleaving
/// equivalent, so the serial replay is a complete oracle, not a sample.
#[test]
fn disjoint_writers_match_serial_replay() {
    const WRITERS: usize = 4;
    const UPDATES: i64 = 20;
    let spec = ShardSpec::quick(WRITERS, Mode::Grouped);

    // Concurrent run.
    let concurrent = build_sharded(spec).expect("sharded workload");
    let stmts: Vec<Vec<String>> = (0..WRITERS)
        .map(|t| (0..UPDATES).map(|i| concurrent.update_stmt(t, i)).collect())
        .collect();
    let pool = SessionPool::new(concurrent.session);
    let barrier = Arc::new(Barrier::new(WRITERS));
    let threads: Vec<_> = stmts
        .iter()
        .map(|writer_stmts| {
            let session = pool.session();
            let barrier = Arc::clone(&barrier);
            let writer_stmts = writer_stmts.clone();
            thread::spawn(move || {
                barrier.wait();
                for s in &writer_stmts {
                    session.execute(s).expect("disjoint write");
                }
            })
        })
        .collect();
    for th in threads {
        th.join().expect("writer thread");
    }
    let concurrent = pool.session();
    // Disjoint footprints never contend.
    assert_eq!(concurrent.quark().stats().latch_conflicts, 0);

    // Serial replay on an identically built system.
    let serial = build_sharded(spec).expect("replay workload");
    for writer_stmts in &stmts {
        for s in writer_stmts {
            serial.session.execute(s).expect("serial replay");
        }
    }

    for h in 0..WRITERS {
        assert_eq!(
            dump(&concurrent, &format!("m{h}")),
            dump(&serial.session, &format!("m{h}")),
            "shard {h} base table diverged from serial replay"
        );
        assert_eq!(
            dump(&concurrent, &format!("audit{h}")),
            dump(&serial.session, &format!("audit{h}")),
            "shard {h} audit table diverged from serial replay"
        );
        assert_eq!(
            serial.audit_rows(h),
            spec.triggers * UPDATES as usize,
            "every update fires every shard trigger"
        );
    }
}

/// Writers whose footprints overlap **only on read tables** — disjoint
/// write sets, every cascade scanning one shared `hub` table — must admit
/// concurrently under shared read latches (zero conflicts, where the old
/// exclusive-only latch serialized them) and still match a serial replay
/// exactly. The differential oracle is complete for the same reason as
/// the disjoint case: no statement writes a table another statement
/// reads or writes, so every interleaving is equivalent.
#[test]
fn overlapping_readers_match_serial_replay_without_contention() {
    const WRITERS: usize = 4;
    const UPDATES: i64 = 20;
    let spec = ShardSpec::quick(WRITERS, Mode::Grouped);

    // Concurrent run over the shared-hub workload.
    let concurrent = build_shared_read(spec).expect("shared-read workload");
    let stmts: Vec<Vec<String>> = (0..WRITERS)
        .map(|t| (0..UPDATES).map(|i| concurrent.update_stmt(t, i)).collect())
        .collect();
    let pool = SessionPool::new(concurrent.session);
    let barrier = Arc::new(Barrier::new(WRITERS));
    let threads: Vec<_> = stmts
        .iter()
        .map(|writer_stmts| {
            let session = pool.session();
            let barrier = Arc::clone(&barrier);
            let writer_stmts = writer_stmts.clone();
            thread::spawn(move || {
                barrier.wait();
                for s in &writer_stmts {
                    session.execute(s).expect("overlapping-read write");
                }
            })
        })
        .collect();
    for th in threads {
        th.join().expect("writer thread");
    }
    let concurrent = pool.session();
    let stats = concurrent.quark().stats();
    // The hub overlap is read-only: shared latches admit every writer.
    assert_eq!(
        stats.latch_conflicts, 0,
        "read-only overlap must not contend: {stats:?}"
    );
    // Every statement took `hub` (+ constants) shared and its own
    // `m{{t}}`/`audit{{t}}` exclusive.
    let statements = (WRITERS as u64) * (UPDATES as u64);
    assert!(
        stats.latch_shared_acquisitions >= statements,
        "each update latches the hub shared: {stats:?}"
    );
    assert!(
        stats.latch_exclusive_acquisitions >= 2 * statements,
        "each update latches its write set exclusive: {stats:?}"
    );

    // Serial replay on an identically built system.
    let serial = build_shared_read(spec).expect("replay workload");
    for writer_stmts in &stmts {
        for s in writer_stmts {
            serial.session.execute(s).expect("serial replay");
        }
    }

    assert_eq!(
        dump(&concurrent, "hub"),
        dump(&serial.session, "hub"),
        "the shared read table must be untouched by either run"
    );
    for h in 0..WRITERS {
        assert_eq!(
            dump(&concurrent, &format!("m{h}")),
            dump(&serial.session, &format!("m{h}")),
            "shard {h} base table diverged from serial replay"
        );
        assert_eq!(
            dump(&concurrent, &format!("audit{h}")),
            dump(&serial.session, &format!("audit{h}")),
            "shard {h} audit table diverged from serial replay"
        );
        assert_eq!(
            serial.audit_rows(h),
            spec.triggers * UPDATES as usize,
            "every update fires every shard trigger through the hub join"
        );
    }
}

/// Writers all hammering one shard serialize on its latch set: no update
/// or trigger firing is lost, the contention shows up in the stats, and —
/// because every writer issues the same statement sequence — the final
/// row state is deterministic.
#[test]
fn overlapping_writers_serialize_without_losing_updates() {
    const WRITERS: usize = 4;
    const UPDATES: usize = 40;
    let spec = ShardSpec::quick(1, Mode::Grouped);
    let w = build_sharded(spec).expect("sharded workload");
    // Disjoint per-writer price ranges, strictly changing per statement:
    // no interleaving can produce a value-level no-op UPDATE (whose empty
    // Δ would legitimately fire nothing and skew the firing count).
    let price = |t: usize, i: usize| 50.0 + t as f64 + i as f64 / 53.0;
    let pool = SessionPool::new(w.session);
    let barrier = Arc::new(Barrier::new(WRITERS));
    let threads: Vec<_> = (0..WRITERS)
        .map(|t| {
            let session = pool.session();
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for i in 0..UPDATES {
                    let p = price(t, i);
                    session
                        .execute(&format!("UPDATE m0 SET price = {p:?} WHERE id = 0"))
                        .expect("overlapping write");
                }
            })
        })
        .collect();
    for th in threads {
        th.join().expect("writer thread");
    }
    let session = pool.session();

    // No lost trigger firings: every one of the WRITERS×UPDATES statements
    // fired all of the shard's triggers exactly once.
    let audit = dump(&session, "audit0");
    assert_eq!(audit.len(), WRITERS * UPDATES * spec.triggers);
    // The final row state is the last-committed statement's write — which
    // must be some writer's final statement, never an interleaving tear.
    let m0 = dump(&session, "m0");
    let Value::Double(final_price) = m0[0][2] else {
        panic!("expected price column")
    };
    assert!(
        (0..WRITERS).any(|t| price(t, UPDATES - 1) == final_price),
        "final price {final_price} is not any writer's last write"
    );
    // Four writers × 40 trigger-bearing updates on one latch set cannot
    // all have slipped past each other.
    assert!(
        session.quark().stats().latch_conflicts > 0,
        "overlapping writers recorded no latch contention"
    );
}

/// A one-table shard with a panic-injectable action. `declared` picks the
/// write path the cascade runs on: a declared write set keeps the
/// footprint bounded (latched path); an undeclared action forces the
/// global-exclusive path.
fn panicky_shard(
    session: &Session,
    name: &str,
    declared: bool,
    panic_flag: Arc<AtomicBool>,
    log: Arc<Mutex<Vec<String>>>,
) {
    session
        .execute(&format!(
            "CREATE TABLE {name} (id INT PRIMARY KEY, name TEXT, price DOUBLE)"
        ))
        .expect("create table");
    session
        .execute(&format!(
            "INSERT INTO {name} VALUES (0, 'hot', 1.0), (1, 'cold', 2.0)"
        ))
        .expect("seed rows");
    let view = ViewSpec {
        name: format!("v_{name}"),
        root_element: "doc".into(),
        binding: TopBinding::Rows,
        top: LevelSpec {
            element: "item".into(),
            table: name.into(),
            parent_fk: None,
            attrs: vec![("name".into(), "name".into())],
            scalars: vec![("*".into(), "*".into())],
            child_count: None,
            child: None,
        },
    };
    let xml_view = view.build(&session.database()).expect("build view");
    session.quark_mut().register_view(xml_view);
    let action = format!("act_{name}");
    let tag = name.to_string();
    let body = move |_db: &quark_core::relational::Database, _call: &quark_core::ActionCall| {
        if panic_flag.load(Ordering::SeqCst) {
            panic!("injected cascade panic in {tag}");
        }
        log.lock().expect("log").push(tag.clone());
        Ok(())
    };
    if declared {
        session
            .register_action_with_writes(action.clone(), Vec::<String>::new(), body)
            .expect("register declared action");
    } else {
        session
            .register_action(action.clone(), body)
            .expect("register action");
    }
    session
        .execute(&format!(
            "create trigger tg_{name} after update on view('v_{name}')/item \
             where OLD_NODE/@name = 'hot' do {action}(NEW_NODE)"
        ))
        .expect("create trigger");
}

/// A panic inside a *latched* cascade (bounded footprint, shared lock
/// level) must release the writer's latches on unwind: writers on other
/// shards, later writers on the same shard, and snapshot readers all keep
/// working. A leaked latch would deadlock this test rather than fail an
/// assertion.
#[test]
fn panicking_latched_cascade_does_not_wedge_other_writers() {
    let session = quark_xquery::session(Default::default(), Mode::Grouped);
    let flag = Arc::new(AtomicBool::new(false));
    let log = Arc::new(Mutex::new(Vec::new()));
    panicky_shard(&session, "pa", true, Arc::clone(&flag), Arc::clone(&log));
    panicky_shard(
        &session,
        "pb",
        true,
        Arc::new(AtomicBool::new(false)),
        Arc::clone(&log),
    );
    let pool = SessionPool::new(session);

    flag.store(true, Ordering::SeqCst);
    let victim = pool.session();
    let crashed = thread::spawn(move || {
        victim
            .execute("UPDATE pa SET price = 9.0 WHERE id = 0")
            .expect("unreachable: cascade panics first");
    })
    .join();
    assert!(crashed.is_err(), "injected panic must propagate");
    flag.store(false, Ordering::SeqCst);

    let session = pool.session();
    // The other shard was never at risk…
    session
        .execute("UPDATE pb SET price = 3.0 WHERE id = 0")
        .expect("sibling shard writer");
    // …and the crashed shard's latches were released on unwind.
    session
        .execute("UPDATE pa SET price = 4.0 WHERE id = 0")
        .expect("same shard writer after panic");
    assert_eq!(log.lock().unwrap().as_slice(), ["pb", "pa"]);
    // Snapshot reads converge on the post-recovery state.
    let StatementResult::Rows { rows, .. } = session
        .execute("SELECT price FROM pa WHERE id = 0")
        .expect("read")
    else {
        panic!("expected rows")
    };
    assert_eq!(rows[0][0], Value::Double(4.0));
}

/// A panic inside a *global-mode* cascade poisons the exclusive state
/// lock; every lock site recovers via `into_inner`, so the system keeps
/// accepting statements. Pins the poisoning-recovery behavior end to end
/// (state lock, publication mutex, latch manager).
#[test]
fn panicking_global_cascade_recovers_from_poison() {
    let session = quark_xquery::session(Default::default(), Mode::Grouped);
    let flag = Arc::new(AtomicBool::new(false));
    let log = Arc::new(Mutex::new(Vec::new()));
    // Undeclared action ⇒ unbounded footprint ⇒ global write path.
    panicky_shard(&session, "pg", false, Arc::clone(&flag), Arc::clone(&log));
    let pool = SessionPool::new(session);

    flag.store(true, Ordering::SeqCst);
    let victim = pool.session();
    let crashed = thread::spawn(move || {
        victim
            .execute("UPDATE pg SET price = 9.0 WHERE id = 0")
            .expect("unreachable: cascade panics first");
    })
    .join();
    assert!(crashed.is_err(), "injected panic must propagate");
    flag.store(false, Ordering::SeqCst);

    let session = pool.session();
    session
        .execute("UPDATE pg SET price = 5.0 WHERE id = 0")
        .expect("global writer after poison");
    assert_eq!(log.lock().unwrap().as_slice(), ["pg"]);
    let StatementResult::Rows { rows, .. } = session
        .execute("SELECT price FROM pg WHERE id = 0")
        .expect("read after poison")
    else {
        panic!("expected rows")
    };
    assert_eq!(rows[0][0], Value::Double(5.0));
    assert!(session.quark().stats().statements >= 2);
}

/// `execute_batch` coalesces runs of same-table INSERTs: storage and the
/// trigger cascade are touched once per run, per-statement results and
/// per-row action invocations are preserved, and the fold is observable
/// in `batched_statements`.
#[test]
fn execute_batch_coalesces_and_preserves_semantics() {
    fn insert_system() -> (Session, Arc<Mutex<Vec<String>>>) {
        let session = quark_xquery::session(Default::default(), Mode::Grouped);
        let log = Arc::new(Mutex::new(Vec::new()));
        session
            .execute("CREATE TABLE ord (id INT PRIMARY KEY, name TEXT, price DOUBLE)")
            .expect("create ord");
        session
            .execute("CREATE TABLE misc (id INT PRIMARY KEY, name TEXT)")
            .expect("create misc");
        let view = ViewSpec {
            name: "orders".into(),
            root_element: "doc".into(),
            binding: TopBinding::Rows,
            top: LevelSpec {
                element: "order".into(),
                table: "ord".into(),
                parent_fk: None,
                attrs: vec![("name".into(), "name".into())],
                scalars: vec![("*".into(), "*".into())],
                child_count: None,
                child: None,
            },
        };
        let xml_view = view.build(&session.database()).expect("build view");
        session.quark_mut().register_view(xml_view);
        let sink = Arc::clone(&log);
        session
            .register_action_with_writes("record", Vec::<String>::new(), move |_db, call| {
                sink.lock().expect("log").push(call.trigger.clone());
                Ok(())
            })
            .expect("register record");
        session
            .execute(
                "create trigger NewOrder after insert on view('orders')/order \
                 do record(NEW_NODE)",
            )
            .expect("create trigger");
        (session, log)
    }

    let batch: Vec<String> = vec![
        "INSERT INTO ord VALUES (1, 'a', 10.0)".into(),
        "INSERT INTO ord VALUES (2, 'b', 20.0)".into(),
        "INSERT INTO ord VALUES (3, 'c', 30.0)".into(),
        "SELECT name FROM ord WHERE id = 2".into(),
        "INSERT INTO misc VALUES (1, 'x')".into(),
        "INSERT INTO misc VALUES (2, 'y')".into(),
        "UPDATE ord SET price = 11.0 WHERE id = 1".into(),
    ];

    // Batched execution.
    let (batched, batched_log) = insert_system();
    let before = batched.quark().stats();
    let results = batched
        .execute_batch(batch.iter().map(String::as_str))
        .expect("batch");
    let after = batched.quark().stats();

    // One result per input statement, each INSERT reporting its own row.
    assert_eq!(results.len(), batch.len());
    for idx in [0, 1, 2, 4, 5, 6] {
        assert!(
            matches!(results[idx], StatementResult::RowsAffected(1)),
            "statement {idx} should report its own single row"
        );
    }
    assert!(matches!(&results[3], StatementResult::Rows { rows, .. } if rows.len() == 1));

    // The two runs (3 ord-INSERTs, 2 misc-INSERTs) folded into one
    // statement each: 6 data-change inputs became 3 executed data-change
    // statements, and all 5 run members are counted as batched.
    assert_eq!(after.batched_statements - before.batched_statements, 5);
    assert_eq!(after.statements - before.statements, 3);
    // The insert cascade ran once for the whole ord run (one Δ), but the
    // action was still invoked once per new node.
    assert_eq!(batched_log.lock().unwrap().len(), 3);

    // Differential: statement-at-a-time execution reaches the same state.
    let (serial, serial_log) = insert_system();
    for s in &batch {
        serial.execute(s).expect("serial statement");
    }
    assert_eq!(dump(&batched, "ord"), dump(&serial, "ord"));
    assert_eq!(dump(&batched, "misc"), dump(&serial, "misc"));
    assert_eq!(serial_log.lock().unwrap().len(), 3);
    // The serial run paid one cascade per INSERT instead of one per run.
    assert_eq!(serial.quark().stats().batched_statements, 0);
    assert!(serial.quark().stats().statements > after.statements - before.statements);
}

/// Mixed readers and disjoint writers together: readers see consistent
/// snapshots (never a torn cross-table state) while writers make
/// progress under them.
#[test]
fn readers_ride_snapshots_while_writers_run() {
    const UPDATES: i64 = 30;
    let spec = ShardSpec::quick(2, Mode::Grouped);
    let w = build_sharded(spec).expect("sharded workload");
    let triggers = spec.triggers;
    let pool = SessionPool::new(w.session);
    let barrier = Arc::new(Barrier::new(3));

    let writers: Vec<_> = (0..2usize)
        .map(|t| {
            let session = pool.session();
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for i in 0..UPDATES {
                    let price = 50.0 + (i % 1000) as f64 / 7.0;
                    session
                        .execute(&format!("UPDATE m{t} SET price = {price:?} WHERE id = 0"))
                        .expect("writer");
                }
            })
        })
        .collect();
    let reader = {
        let session = pool.session();
        let barrier = Arc::clone(&barrier);
        thread::spawn(move || {
            barrier.wait();
            for _ in 0..200 {
                // Audit rows only ever grow in a snapshot-consistent
                // world: each audit table holds a multiple of the firings
                // one statement contributes, never a partial cascade…
                for h in 0..2 {
                    let StatementResult::Rows { rows, .. } = session
                        .execute(&format!("SELECT seq FROM audit{h}"))
                        .expect("reader")
                    else {
                        panic!("expected rows")
                    };
                    assert!(rows.len() <= (UPDATES as usize) * triggers);
                }
            }
        })
    };
    for th in writers {
        th.join().expect("writer thread");
    }
    reader.join().expect("reader thread");

    let session = pool.session();
    for h in 0..2 {
        let StatementResult::Rows { rows, .. } = session
            .execute(&format!("SELECT seq FROM audit{h}"))
            .expect("final read")
        else {
            panic!("expected rows")
        };
        assert_eq!(rows.len(), UPDATES as usize * triggers);
    }
}
