//! `ANALYZE TRIGGERS` end to end: footprint soundness over the bench
//! corpora, cascade-termination classification, commutativity reporting,
//! the `write_footprint` degradation edge cases counter-asserted by the
//! analyzer's independent recomputation — and the dual-catch guarantee
//! that an under-declared footprint is caught by the static pass *and*
//! (under the `footprint-oracle` feature) by the runtime oracle.

use std::sync::Arc;

use quark_bench::{build, build_sharded, build_shared_read, ShardSpec, WorkloadSpec};
use quark_core::relational::{Event, SqlTrigger, TriggerBody, Value};
use quark_core::{AnalysisReport, Footprint, Mode, Session, StatementResult};
use quark_xquery::viewtree::{LevelSpec, TopBinding, ViewSpec};

/// Run `ANALYZE TRIGGERS` through the statement surface.
fn analyze(session: &Session) -> AnalysisReport {
    let StatementResult::Analysis(report) = session
        .execute("ANALYZE TRIGGERS")
        .expect("ANALYZE TRIGGERS executes")
    else {
        panic!("expected an Analysis result")
    };
    report
}

/// A single-level `item` view named `view` over `table`.
fn flat_view(view: &str, table: &str) -> ViewSpec {
    ViewSpec {
        name: view.into(),
        root_element: "doc".into(),
        binding: TopBinding::Rows,
        top: LevelSpec {
            element: "item".into(),
            table: table.into(),
            parent_fk: None,
            attrs: vec![("name".into(), "name".into())],
            scalars: vec![("*".into(), "*".into())],
            child_count: None,
            child: None,
        },
    }
}

fn register_flat_view(session: &Session, view: &str, table: &str) {
    let spec = flat_view(view, table);
    let xml_view = spec.build(&session.database()).expect("view builds");
    session.quark_mut().register_view(xml_view);
}

fn create_table(session: &Session, table: &str) {
    session
        .execute(&format!(
            "CREATE TABLE {table} (id INT PRIMARY KEY, name TEXT, price DOUBLE)"
        ))
        .expect("create table");
    session
        .database_mut()
        .load(
            table,
            (0..4)
                .map(|k| {
                    vec![
                        Value::Int(k),
                        Value::str(format!("{table}_{k}")),
                        Value::Double(1.0),
                    ]
                })
                .collect(),
        )
        .expect("load rows");
}

// ---------------------------------------------------------------------
// The CI soundness gate: every bench corpus must analyze clean.
// ---------------------------------------------------------------------

/// The hierarchy corpus: one grouped trigger program whose action writes a
/// trigger-free temp table. Zero soundness errors, no cycles, and the
/// single group pairs with nothing.
#[test]
fn hierarchy_corpus_analyzes_clean() {
    let workload = build(WorkloadSpec::quick(Mode::Grouped)).expect("bench workload");
    let report = analyze(&workload.session);
    assert_eq!(report.errors, 0, "soundness errors:\n{}", report.text);
    assert_eq!(report.groups, 1, "{}", report.text);
    assert_eq!(
        report.cycles_bounded + report.cycles_unbounded,
        0,
        "{}",
        report.text
    );
    assert!(report.text.contains("__temp"), "{}", report.text);
}

/// The disjoint-shard corpus: every shard group must commute with every
/// other — the analyzer's static counterpart of the parallel-writers
/// differential suite.
#[test]
fn sharded_corpus_analyzes_clean_and_fully_commutes() {
    const SHARDS: usize = 3;
    let workload = build_sharded(ShardSpec::quick(SHARDS, Mode::Grouped)).expect("sharded");
    let report = analyze(&workload.session);
    assert_eq!(report.errors, 0, "soundness errors:\n{}", report.text);
    assert_eq!(report.groups, SHARDS as u64, "{}", report.text);
    assert_eq!(
        report.cycles_bounded + report.cycles_unbounded,
        0,
        "{}",
        report.text
    );
    let pairs = (SHARDS * (SHARDS - 1) / 2) as u64;
    assert_eq!(report.commuting_pairs, pairs, "{}", report.text);
    assert_eq!(report.conflicting_pairs, 0, "{}", report.text);
}

/// The shared-read corpus: shards overlap on the `hub` table, so they do
/// not all commute, but the footprints must still be exactly sound.
#[test]
fn shared_read_corpus_analyzes_clean() {
    let workload = build_shared_read(ShardSpec::quick(3, Mode::Grouped)).expect("shared read");
    let report = analyze(&workload.session);
    assert_eq!(report.errors, 0, "soundness errors:\n{}", report.text);
    assert_eq!(report.groups, 3, "{}", report.text);
    assert_eq!(
        report.cycles_bounded + report.cycles_unbounded,
        0,
        "{}",
        report.text
    );
    assert!(report.text.contains("hub"), "{}", report.text);
}

/// The `footprint_violations` counter is part of `STATS` and stays zero
/// on a sound program (it can only move under the `footprint-oracle`
/// feature, and then only on a proven soundness hole).
#[test]
fn stats_expose_the_violation_counter() {
    let mut workload = build(WorkloadSpec::quick(Mode::Grouped)).expect("bench workload");
    workload.one_update().expect("update runs");
    let StatementResult::Rows { rows, .. } = workload.session.execute("STATS").expect("stats")
    else {
        panic!("expected rows")
    };
    let row = rows
        .iter()
        .find(|r| r[0] == Value::str("footprint_violations"))
        .expect("counter listed");
    assert_eq!(row[1], Value::Int(0));
}

// ---------------------------------------------------------------------
// `write_footprint` degradation edge cases, counter-asserted by the
// analyzer's independent recomputation.
// ---------------------------------------------------------------------

/// An action registered without a declared write set is opaque: the latch
/// analysis must degrade to global mode, and the analyzer must agree
/// (warning, not error — both sides serialize).
#[test]
fn opaque_action_degrades_to_global_and_analyzer_agrees() {
    let session = quark_xquery::session(quark_core::relational::Database::new(), Mode::Grouped);
    create_table(&session, "src");
    register_flat_view(&session, "v", "src");
    session.register_action("opaque", |_, _| Ok(())).unwrap();
    session
        .execute(
            "create trigger T after update on view('v')/item \
             where OLD_NODE/@name = 'src_0' do opaque(NEW_NODE)",
        )
        .unwrap();
    assert_eq!(session.quark().write_footprint("src"), Footprint::Global);
    let report = analyze(&session);
    assert_eq!(report.errors, 0, "{}", report.text);
    assert!(report.warnings >= 1, "{}", report.text);
    assert!(
        report.text.contains("no declared write set"),
        "{}",
        report.text
    );
}

/// A raw SQL trigger installed directly on the database is an arbitrary
/// closure: global mode, and the analyzer's statement-level recompute must
/// agree it is opaque (no false "bounded" claim — that would be an error).
#[test]
fn raw_sql_trigger_degrades_to_global_and_analyzer_agrees() {
    let session = quark_xquery::session(quark_core::relational::Database::new(), Mode::Grouped);
    create_table(&session, "src");
    session
        .database_mut()
        .create_trigger(SqlTrigger {
            name: "raw".into(),
            table: "src".into(),
            event: Event::Update,
            body: TriggerBody::Native(Arc::new(|_, _| Ok(()))),
        })
        .unwrap();
    assert_eq!(session.quark().write_footprint("src"), Footprint::Global);
    let report = analyze(&session);
    assert_eq!(report.errors, 0, "{}", report.text);
}

/// Declared action writes are chased transitively: a trigger on `a_tbl`
/// writing `b_tbl`, whose own trigger writes `c_tbl`, puts all three in
/// the exclusive write set — and the analyzer's independent recomputation
/// finds no disagreement.
#[test]
fn multi_hop_declared_writes_are_chased() {
    let session = quark_xquery::session(quark_core::relational::Database::new(), Mode::Grouped);
    for t in ["a_tbl", "b_tbl", "c_tbl"] {
        create_table(&session, t);
    }
    register_flat_view(&session, "va", "a_tbl");
    register_flat_view(&session, "vb", "b_tbl");
    session
        .register_action_with_writes("write_b", ["b_tbl"], |db, call| {
            let seq = match &call.params[0] {
                Value::Xml(x) => x.element_count() as i64,
                _ => 0,
            };
            db.insert_row(
                "b_tbl",
                vec![
                    Value::Int(100 + seq),
                    Value::str("cascade"),
                    Value::Double(0.0),
                ],
            )
        })
        .unwrap();
    session
        .register_action_with_writes("write_c", ["c_tbl"], |_, _| Ok(()))
        .unwrap();
    session
        .execute(
            "create trigger TA after update on view('va')/item \
             where OLD_NODE/@name = 'a_tbl_0' do write_b(NEW_NODE)",
        )
        .unwrap();
    session
        .execute(
            "create trigger TB after update on view('vb')/item \
             where OLD_NODE/@name = 'b_tbl_0' do write_c(NEW_NODE)",
        )
        .unwrap();
    let Footprint::Tables { write, read } = session.quark().write_footprint("a_tbl") else {
        panic!("multi-hop declared chain must stay bounded")
    };
    for t in ["a_tbl", "b_tbl", "c_tbl"] {
        assert!(write.contains(t), "write set {write:?} misses {t}");
    }
    assert!(
        read.is_disjoint(&write),
        "read {read:?} overlaps write {write:?}"
    );
    let report = analyze(&session);
    assert_eq!(report.errors, 0, "{}", report.text);
}

// ---------------------------------------------------------------------
// Cascade termination classification.
// ---------------------------------------------------------------------

/// A trigger whose action writes its own source table can re-fire itself:
/// the analyzer must classify the self-loop as potentially
/// non-terminating (only the runtime cascade depth cap bounds it).
#[test]
fn self_feeding_trigger_is_classified_unbounded() {
    let session = quark_xquery::session(quark_core::relational::Database::new(), Mode::Grouped);
    create_table(&session, "looped");
    register_flat_view(&session, "vl", "looped");
    session
        .register_action_with_writes("feed", ["looped"], |_, _| Ok(()))
        .unwrap();
    session
        .execute(
            "create trigger L after update on view('vl')/item \
             where OLD_NODE/@name = 'looped_0' do feed(NEW_NODE)",
        )
        .unwrap();
    let report = analyze(&session);
    assert_eq!(report.errors, 0, "{}", report.text);
    assert_eq!(report.cycles_unbounded, 1, "{}", report.text);
    assert_eq!(report.cycles_bounded, 0, "{}", report.text);
    assert!(
        report.text.contains("POTENTIALLY NON-TERMINATING"),
        "{}",
        report.text
    );
}

// ---------------------------------------------------------------------
// The dual-catch guarantee.
// ---------------------------------------------------------------------

/// A shared-read fixture (one shard): the group's plans read `hub`, so the
/// recorded footprint must latch it.
fn shared_read_fixture() -> Session {
    build_shared_read(ShardSpec::quick(1, Mode::Grouped))
        .expect("shared-read workload")
        .session
}

/// An intentionally under-declared footprint — `hub` removed from the
/// recorded group footprint behind the latch analysis — must be caught by
/// the **static** pass: the analyzer recomputes the truth from the
/// compiled plans, not from the recording.
#[test]
fn tampered_footprint_is_caught_statically() {
    let session = shared_read_fixture();
    assert_eq!(analyze(&session).errors, 0, "fixture must start sound");
    assert!(
        session
            .quark_mut()
            .tamper_footprint_for_test("sr0_t0", "hub"),
        "tamper hook must find `hub` in the recorded footprint"
    );
    let report = analyze(&session);
    assert!(report.errors >= 1, "{}", report.text);
    assert!(
        report.text.contains("hub"),
        "the error must name the missing table:\n{}",
        report.text
    );
}

/// The same under-declared footprint must also be caught by the **runtime**
/// oracle: executing a write that fires the group makes the cascade read
/// `hub` outside the latched scope, which bumps `footprint_violations`.
#[cfg(feature = "footprint-oracle")]
#[test]
fn tampered_footprint_is_caught_by_the_runtime_oracle() {
    use quark_core::relational::Database;
    let session = shared_read_fixture();
    assert!(session
        .quark_mut()
        .tamper_footprint_for_test("sr0_t0", "hub"));
    assert_eq!(session.database().stats().footprint_violations, 0);
    // Tolerate instead of panicking so the violation is observable.
    let _tol = Database::tolerate_footprint_violations();
    session
        .execute("UPDATE m0 SET price = 7.5 WHERE id = 0")
        .expect("the update itself still executes");
    assert!(
        session.database().stats().footprint_violations > 0,
        "the oracle must flag the un-latched `hub` read"
    );
}

/// Runtime-only catch: an action that *declares* writes `{declared}` but
/// actually writes `undeclared` is invisible to the static pass (closures
/// cannot be inspected), but the oracle catches the out-of-scope write.
#[cfg(feature = "footprint-oracle")]
#[test]
fn under_declared_action_write_is_caught_by_the_runtime_oracle() {
    use quark_core::relational::Database;
    let session = quark_xquery::session(Database::new(), Mode::Grouped);
    for t in ["watched", "declared", "undeclared"] {
        create_table(&session, t);
    }
    register_flat_view(&session, "vw", "watched");
    session
        .register_action_with_writes("lies", ["declared"], |db, _| {
            db.insert_row(
                "undeclared",
                vec![Value::Int(99), Value::str("oops"), Value::Double(0.0)],
            )
        })
        .unwrap();
    session
        .execute(
            "create trigger U after update on view('vw')/item \
             where OLD_NODE/@name = 'watched_0' do lies(NEW_NODE)",
        )
        .unwrap();
    let _tol = Database::tolerate_footprint_violations();
    session
        .execute("UPDATE watched SET price = 2.0 WHERE id = 0")
        .expect("update executes");
    assert!(
        session.database().stats().footprint_violations > 0,
        "the oracle must flag the undeclared `undeclared` write"
    );
}

/// Commutativity is visible end to end: two disjoint flat trigger systems
/// commute, and the pair report says so.
#[test]
fn disjoint_flat_systems_commute_in_the_report() {
    let session = quark_xquery::session(quark_core::relational::Database::new(), Mode::Grouped);
    for t in ["left", "right", "left_log", "right_log"] {
        create_table(&session, t);
    }
    register_flat_view(&session, "lv", "left");
    register_flat_view(&session, "rv", "right");
    session
        .register_action_with_writes("log_left", ["left_log"], |_, _| Ok(()))
        .unwrap();
    session
        .register_action_with_writes("log_right", ["right_log"], |_, _| Ok(()))
        .unwrap();
    session
        .execute(
            "create trigger LT after update on view('lv')/item \
             where OLD_NODE/@name = 'left_0' do log_left(NEW_NODE)",
        )
        .unwrap();
    session
        .execute(
            "create trigger RT after update on view('rv')/item \
             where OLD_NODE/@name = 'right_0' do log_right(NEW_NODE)",
        )
        .unwrap();
    let report = analyze(&session);
    assert_eq!(report.errors, 0, "{}", report.text);
    assert_eq!(report.commuting_pairs, 1, "{}", report.text);
    assert_eq!(report.conflicting_pairs, 0, "{}", report.text);
    assert!(report.text.contains("LT || RT"), "{}", report.text);
}

/// `ANALYZE` without `TRIGGERS`, and `ANALYZE TRIGGERS` with trailing
/// tokens, are parse errors — the statement surface stays strict.
#[test]
fn analyze_statement_parses_strictly() {
    let session = quark_xquery::session(quark_core::relational::Database::new(), Mode::Grouped);
    assert!(session.execute("ANALYZE").is_err());
    assert!(session.execute("ANALYZE TRIGGERS please").is_err());
    let report = analyze(&session);
    assert_eq!(report.groups, 0);
}
