//! Differential testing: random statement sequences against the catalog
//! view, comparing the translated triggers' firings (all three modes) with
//! the materialize-and-diff oracle's Definitions-2/3 semantics — including
//! the full `OLD_NODE`/`NEW_NODE` values.

mod common;

use std::collections::BTreeSet;

use common::{catalog_path, Log};
use proptest::prelude::*;
use quark_core::oracle::changes_of;
use quark_core::relational::{Database, Result as DbResult, Value};
use quark_core::xqgm::fixtures::product_vendor_db;
use quark_core::{Action, ActionParam, Condition, Mode, Quark, TriggerSpec, XmlEvent, XmlView};

/// A randomized, always-applicable operation.
#[derive(Debug, Clone)]
enum Op {
    /// Set vendor (vid, pid) to price p — insert or update as needed.
    SetVendor(usize, usize, u32),
    /// Remove vendor (vid, pid) if present.
    DropVendor(usize, usize),
    /// Rename product pid (cycling through a name pool).
    Rename(usize, usize),
    /// Set product pid's mfr (never visible in the view).
    SetMfr(usize, usize),
}

const VIDS: [&str; 4] = ["Amazon", "Bestbuy", "Circuitcity", "Buy.com"];
const PIDS: [&str; 4] = ["P1", "P2", "P3", "P4"];
const NAMES: [&str; 4] = ["CRT 15", "LCD 19", "OLED 42", "Plasma 50"];
const MFRS: [&str; 3] = ["Samsung", "LG", "Viewsonic"];

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..4usize, 0..4usize, 1..400u32).prop_map(|(v, p, c)| Op::SetVendor(v, p, c)),
        (0..4usize, 0..4usize).prop_map(|(v, p)| Op::DropVendor(v, p)),
        (0..4usize, 0..4usize).prop_map(|(p, n)| Op::Rename(p, n)),
        (0..4usize, 0..3usize).prop_map(|(p, m)| Op::SetMfr(p, m)),
    ]
}

/// Apply one op as a single SQL statement (no-op when the target state is
/// already in place, so every system sees identical statements).
fn apply(db: &mut Database, op: &Op) -> DbResult<bool> {
    match op {
        Op::SetVendor(v, p, cents) => {
            let key = [Value::str(VIDS[*v]), Value::str(PIDS[*p])];
            let price = Value::Double(*cents as f64 / 2.0);
            if db.table("vendor")?.get(&key).is_some() {
                db.update_by_key("vendor", &key, &[(2, price)])?;
            } else {
                // The product may not exist (P4 initially): create it first
                // so FK-style joins behave.
                let pkey = [Value::str(PIDS[*p])];
                if db.table("product")?.get(&pkey).is_none() {
                    db.insert(
                        "product",
                        vec![vec![
                            Value::str(PIDS[*p]),
                            Value::str(NAMES[*p]),
                            Value::str(MFRS[0]),
                        ]],
                    )?;
                }
                db.insert("vendor", vec![vec![key[0].clone(), key[1].clone(), price]])?;
            }
            Ok(true)
        }
        Op::DropVendor(v, p) => {
            let key = [Value::str(VIDS[*v]), Value::str(PIDS[*p])];
            db.delete_by_key("vendor", &key)
        }
        Op::Rename(p, n) => {
            let key = [Value::str(PIDS[*p])];
            if db.table("product")?.get(&key).is_none() {
                return Ok(false);
            }
            db.update_by_key("product", &key, &[(1, Value::str(NAMES[*n]))])
        }
        Op::SetMfr(p, m) => {
            let key = [Value::str(PIDS[*p])];
            if db.table("product")?.get(&key).is_none() {
                return Ok(false);
            }
            db.update_by_key("product", &key, &[(2, Value::str(MFRS[*m]))])
        }
    }
}

/// `(event, key, old serialization, new serialization)`.
type Observed = (String, String, String, String);

fn watch_all(mode: Mode) -> (Quark, Log) {
    let db = product_vendor_db();
    let pg = catalog_path(&db);
    let mut quark = Quark::new(db, mode);
    quark.register_view(XmlView::new("catalog").with_anchor("product", pg));
    let log = Log::default();
    for (event, name) in [
        (XmlEvent::Insert, "ins"),
        (XmlEvent::Update, "upd"),
        (XmlEvent::Delete, "del"),
    ] {
        let sink = log.clone();
        quark.register_action(format!("record_{name}"), move |_db, call| {
            sink.0
                .lock()
                .unwrap()
                .push((call.trigger.clone(), call.params.clone()));
            Ok(())
        });
        quark
            .create_trigger(TriggerSpec {
                name: format!("watch_{name}"),
                event,
                view: "catalog".into(),
                anchor: "product".into(),
                condition: Condition::True,
                action: Action {
                    function: format!("record_{name}"),
                    params: vec![ActionParam::OldNode, ActionParam::NewNode],
                },
            })
            .expect("trigger");
    }
    (quark, log)
}

fn observed_set(log: &Log) -> BTreeSet<Observed> {
    log.take()
        .into_iter()
        .map(|(trigger, params)| {
            let event = trigger.trim_start_matches("watch_").to_string();
            let render = |v: &Value| match v {
                Value::Xml(x) => x.to_xml(),
                _ => String::new(),
            };
            let old = render(&params[0]);
            let new = render(&params[1]);
            // Key = the product name attribute of whichever side exists.
            let key = match (&params[0], &params[1]) {
                (_, Value::Xml(x)) => x.attr("name").unwrap_or_default().to_string(),
                (Value::Xml(x), _) => x.attr("name").unwrap_or_default().to_string(),
                _ => String::new(),
            };
            (event, key, old, new)
        })
        .collect()
}

proptest! {
    // Deterministic in CI; sweep PROPTEST_SEED manually for wider hunts.
    #![proptest_config(ProptestConfig {
        cases: 48,
        rng_seed: Some(0x1cde_2005_0003),
        ..ProptestConfig::default()
    })]

    /// For every statement in a random sequence, each translation mode
    /// fires exactly the events the oracle derives from Definitions 2-3,
    /// with byte-identical OLD/NEW node serializations.
    #[test]
    fn translated_triggers_match_oracle(ops in proptest::collection::vec(op_strategy(), 1..10)) {
        let (mut ungrouped, log_u) = watch_all(Mode::Ungrouped);
        let (mut grouped, log_g) = watch_all(Mode::Grouped);
        let (mut agg, log_a) = watch_all(Mode::GroupedAgg);
        let pg = catalog_path(&ungrouped.db);

        for op in &ops {
            // Oracle: expected changes for this statement, from the current
            // state (identical across systems).
            let expected: BTreeSet<Observed> = changes_of(&pg, &ungrouped.db, |db| {
                apply(db, op).map(|_| ())
            })
            .expect("oracle")
            .into_iter()
            .map(|c| {
                let event = match c.event {
                    XmlEvent::Insert => "ins",
                    XmlEvent::Update => "upd",
                    XmlEvent::Delete => "del",
                }
                .to_string();
                let key = c.key[0].to_string();
                let old = c.old.map(|x| x.to_xml()).unwrap_or_default();
                let new = c.new.map(|x| x.to_xml()).unwrap_or_default();
                (event, key, old, new)
            })
            .collect();

            apply(&mut ungrouped.db, op).expect("apply ungrouped");
            apply(&mut grouped.db, op).expect("apply grouped");
            apply(&mut agg.db, op).expect("apply agg");

            let got_u = observed_set(&log_u);
            let got_g = observed_set(&log_g);
            let got_a = observed_set(&log_a);
            prop_assert_eq!(&got_u, &expected, "UNGROUPED vs oracle on {:?}", op);
            prop_assert_eq!(&got_g, &expected, "GROUPED vs oracle on {:?}", op);
            prop_assert_eq!(&got_a, &expected, "GROUPED-AGG vs oracle on {:?}", op);
        }
    }
}
