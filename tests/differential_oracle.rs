//! Differential testing: random statement sequences against the catalog
//! view, comparing the translated triggers' firings (all three modes) with
//! the materialize-and-diff oracle's Definitions-2/3 semantics — including
//! the full `OLD_NODE`/`NEW_NODE` values.
//!
//! Every operation is rendered as SQL text once and executed verbatim
//! against all three sessions *and* (via the relational `sql` module) the
//! oracle's shadow database, so the systems see byte-identical statements.

mod common;

use std::collections::BTreeSet;

use common::{catalog_path, Log};
use proptest::prelude::*;
use quark_core::oracle::changes_of;
use quark_core::relational::{sql, Database, Error, Value};
use quark_core::xqgm::fixtures::product_vendor_db;
use quark_core::{Mode, Quark, Session, XmlEvent, XmlView};
use quark_xquery::XQueryFrontend;

/// A randomized, always-applicable operation.
#[derive(Debug, Clone)]
enum Op {
    /// Set vendor (vid, pid) to price p — insert or update as needed.
    SetVendor(usize, usize, u32),
    /// Remove vendor (vid, pid) if present.
    DropVendor(usize, usize),
    /// Rename product pid (cycling through a name pool).
    Rename(usize, usize),
    /// Set product pid's mfr (never visible in the view).
    SetMfr(usize, usize),
}

const VIDS: [&str; 4] = ["Amazon", "Bestbuy", "Circuitcity", "Buy.com"];
const PIDS: [&str; 4] = ["P1", "P2", "P3", "P4"];
const NAMES: [&str; 4] = ["CRT 15", "LCD 19", "OLED 42", "Plasma 50"];
const MFRS: [&str; 3] = ["Samsung", "LG", "Viewsonic"];

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..4usize, 0..4usize, 1..400u32).prop_map(|(v, p, c)| Op::SetVendor(v, p, c)),
        (0..4usize, 0..4usize).prop_map(|(v, p)| Op::DropVendor(v, p)),
        (0..4usize, 0..4usize).prop_map(|(p, n)| Op::Rename(p, n)),
        (0..4usize, 0..3usize).prop_map(|(p, m)| Op::SetMfr(p, m)),
    ]
}

/// Render one op as SQL statements, decided against the current database
/// state (identical across all systems at this point). Some ops expand to
/// two statements (creating a missing product before its vendor row).
fn statements_for(db: &Database, op: &Op) -> Vec<String> {
    match op {
        Op::SetVendor(v, p, cents) => {
            let (vid, pid) = (VIDS[*v], PIDS[*p]);
            let key = [Value::str(vid), Value::str(pid)];
            let price = *cents as f64 / 2.0;
            let mut stmts = Vec::new();
            if db
                .table("vendor")
                .expect("vendor table")
                .get(&key)
                .is_some()
            {
                stmts.push(format!(
                    "UPDATE vendor SET price = {price:?} \
                     WHERE vid = '{vid}' AND pid = '{pid}'"
                ));
            } else {
                // The product may not exist (P4 initially): create it first
                // so FK-style joins behave.
                let pkey = [Value::str(pid)];
                if db
                    .table("product")
                    .expect("product table")
                    .get(&pkey)
                    .is_none()
                {
                    stmts.push(format!(
                        "INSERT INTO product VALUES ('{pid}', '{}', '{}')",
                        NAMES[*p], MFRS[0]
                    ));
                }
                stmts.push(format!(
                    "INSERT INTO vendor VALUES ('{vid}', '{pid}', {price:?})"
                ));
            }
            stmts
        }
        Op::DropVendor(v, p) => vec![format!(
            "DELETE FROM vendor WHERE vid = '{}' AND pid = '{}'",
            VIDS[*v], PIDS[*p]
        )],
        Op::Rename(p, n) => {
            let pid = PIDS[*p];
            if db
                .table("product")
                .expect("product table")
                .get(&[Value::str(pid)])
                .is_none()
            {
                return vec![];
            }
            vec![format!(
                "UPDATE product SET pname = '{}' WHERE pid = '{pid}'",
                NAMES[*n]
            )]
        }
        Op::SetMfr(p, m) => {
            let pid = PIDS[*p];
            if db
                .table("product")
                .expect("product table")
                .get(&[Value::str(pid)])
                .is_none()
            {
                return vec![];
            }
            vec![format!(
                "UPDATE product SET mfr = '{}' WHERE pid = '{pid}'",
                MFRS[*m]
            )]
        }
    }
}

/// `(event, key, old serialization, new serialization)`.
type Observed = (String, String, String, String);

fn watch_all(mode: Mode) -> (Session, Log) {
    let db = product_vendor_db();
    let pg = catalog_path(&db);
    let mut quark = Quark::new(db, mode);
    quark.register_view(XmlView::new("catalog").with_anchor("product", pg));
    let session = Session::with_frontend(quark, Box::new(XQueryFrontend));
    let log = Log::default();
    for (event, name) in [
        (XmlEvent::Insert, "ins"),
        (XmlEvent::Update, "upd"),
        (XmlEvent::Delete, "del"),
    ] {
        let sink = log.clone();
        session
            .register_action(format!("record_{name}"), move |_db, call| {
                sink.0
                    .lock()
                    .unwrap()
                    .push((call.trigger.clone(), call.params.clone()));
                Ok(())
            })
            .expect("action");
        session
            .execute(&format!(
                "create trigger watch_{name} after {event} on view('catalog')/product \
                 do record_{name}(OLD_NODE, NEW_NODE)"
            ))
            .expect("trigger");
    }
    (session, log)
}

fn observed_set(log: &Log) -> BTreeSet<Observed> {
    log.take()
        .into_iter()
        .map(|(trigger, params)| {
            let event = trigger.trim_start_matches("watch_").to_string();
            let render = |v: &Value| match v {
                Value::Xml(x) => x.to_xml(),
                _ => String::new(),
            };
            let old = render(&params[0]);
            let new = render(&params[1]);
            // Key = the product name attribute of whichever side exists.
            let key = match (&params[0], &params[1]) {
                (_, Value::Xml(x)) => x.attr("name").unwrap_or_default().to_string(),
                (Value::Xml(x), _) => x.attr("name").unwrap_or_default().to_string(),
                _ => String::new(),
            };
            (event, key, old, new)
        })
        .collect()
}

proptest! {
    // Deterministic in CI; sweep PROPTEST_SEED manually for wider hunts.
    #![proptest_config(ProptestConfig {
        cases: 48,
        rng_seed: Some(0x1cde_2005_0003),
        ..ProptestConfig::default()
    })]

    /// For every statement in a random sequence, each translation mode
    /// fires exactly the events the oracle derives from Definitions 2-3,
    /// with byte-identical OLD/NEW node serializations.
    #[test]
    fn translated_triggers_match_oracle(ops in proptest::collection::vec(op_strategy(), 1..10)) {
        let (ungrouped, log_u) = watch_all(Mode::Ungrouped);
        let (grouped, log_g) = watch_all(Mode::Grouped);
        let (agg, log_a) = watch_all(Mode::GroupedAgg);
        let pg = catalog_path(&ungrouped.database());

        for op in &ops {
            let stmts = statements_for(&ungrouped.database(), op);
            // Oracle: expected changes for this statement, from the current
            // state (identical across systems).
            let expected: BTreeSet<Observed> = changes_of(&pg, &ungrouped.database(), |db| {
                for s in &stmts {
                    sql::run(db, s).map_err(Error::from)?;
                }
                Ok(())
            })
            .expect("oracle")
            .into_iter()
            .map(|c| {
                let event = match c.event {
                    XmlEvent::Insert => "ins",
                    XmlEvent::Update => "upd",
                    XmlEvent::Delete => "del",
                }
                .to_string();
                let key = c.key[0].to_string();
                let old = c.old.map(|x| x.to_xml()).unwrap_or_default();
                let new = c.new.map(|x| x.to_xml()).unwrap_or_default();
                (event, key, old, new)
            })
            .collect();

            for s in &stmts {
                ungrouped.execute(s).expect("apply ungrouped");
                grouped.execute(s).expect("apply grouped");
                agg.execute(s).expect("apply agg");
            }

            let got_u = observed_set(&log_u);
            let got_g = observed_set(&log_g);
            let got_a = observed_set(&log_a);
            prop_assert_eq!(&got_u, &expected, "UNGROUPED vs oracle on {:?}", op);
            prop_assert_eq!(&got_g, &expected, "GROUPED vs oracle on {:?}", op);
            prop_assert_eq!(&got_a, &expected, "GROUPED-AGG vs oracle on {:?}", op);
        }
    }
}
