//! Structural scalability properties behind Figure 17: grouped modes keep
//! the SQL-trigger count constant while XML triggers grow; the constants
//! table absorbs new triggers; ungrouped mode multiplies SQL triggers.

use quark_bench::{build, split_fanout, WorkloadSpec};
use quark_core::Mode;

fn spec(mode: Mode, triggers: usize) -> WorkloadSpec {
    let mut s = WorkloadSpec::quick(mode);
    s.leaf_count = 512;
    s.fanout = 16;
    s.triggers = triggers;
    s.satisfied = 2.min(triggers);
    s
}

#[test]
fn grouped_sql_triggers_constant_in_xml_triggers() {
    let a = build(spec(Mode::Grouped, 10)).unwrap();
    let b = build(spec(Mode::Grouped, 500)).unwrap();
    assert_eq!(a.quark().sql_trigger_count(), b.quark().sql_trigger_count());
    assert_eq!(b.quark().group_count(), 1);
    assert_eq!(b.quark().xml_trigger_count(), 500);
}

#[test]
fn ungrouped_sql_triggers_scale_linearly() {
    let a = build(spec(Mode::Ungrouped, 10)).unwrap();
    let b = build(spec(Mode::Ungrouped, 50)).unwrap();
    assert_eq!(
        a.quark().sql_trigger_count() * 5,
        b.quark().sql_trigger_count()
    );
    assert_eq!(b.quark().group_count(), 50);
}

#[test]
fn grouped_firing_work_independent_of_trigger_count() {
    // With identical updates, the *database* work (statements + trigger
    // bodies evaluated) must not grow with the XML-trigger population.
    let mut small = build(spec(Mode::Grouped, 10)).unwrap();
    let mut large = build(spec(Mode::Grouped, 500)).unwrap();
    for _ in 0..5 {
        small.one_update().unwrap();
        large.one_update().unwrap();
    }
    assert_eq!(
        small.session.database().stats().triggers_fired,
        large.session.database().stats().triggers_fired
    );
    // Both fire the same satisfied triggers.
    assert_eq!(small.temp_rows(), large.temp_rows());
}

#[test]
fn ungrouped_firing_work_scales_with_trigger_count() {
    let mut small = build(spec(Mode::Ungrouped, 10)).unwrap();
    let mut large = build(spec(Mode::Ungrouped, 50)).unwrap();
    small.one_update().unwrap();
    large.one_update().unwrap();
    assert!(
        large.session.database().stats().triggers_fired
            >= 4 * small.session.database().stats().triggers_fired,
        "{} vs {}",
        large.session.database().stats().triggers_fired,
        small.session.database().stats().triggers_fired
    );
}

#[test]
fn trigger_creation_amortizes_in_grouped_mode() {
    // The 500-trigger build performs exactly one translation; its total
    // creation time stays within a small multiple of a 10-trigger build
    // (it is dominated by constants-row inserts).
    let w = build(spec(Mode::Grouped, 500)).unwrap();
    assert_eq!(w.quark().group_count(), 1);
    // Structural proxy for amortization: SQL triggers did not multiply.
    assert!(w.quark().sql_trigger_count() <= 8);
}

#[test]
fn deeper_hierarchies_add_source_events() {
    let d2 = build({
        let mut s = spec(Mode::Grouped, 1);
        s.depth = 2;
        s
    })
    .unwrap();
    let d4 = build({
        let mut s = spec(Mode::Grouped, 1);
        s.depth = 4;
        s.leaf_count = 1024;
        s
    })
    .unwrap();
    // More tables -> more (table, event) pairs -> more SQL triggers per
    // group, but still independent of the XML-trigger count.
    assert!(d4.quark().sql_trigger_count() > d2.quark().sql_trigger_count());
}

#[test]
fn split_fanout_is_exact_for_table_2_values() {
    for (fanout, levels) in [(64, 2), (256, 3), (1024, 4), (16, 1)] {
        let parts = split_fanout(fanout, levels);
        assert_eq!(parts.iter().product::<usize>(), fanout);
    }
}
