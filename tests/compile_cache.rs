//! The per-system compile cache: memoized trigger translation must be
//! observationally identical to a fresh uncached compile (same `EXPLAIN
//! TRIGGER` rendering, same SQL-trigger and constants-row counts, same
//! firing results in all three modes), entries must be shared across
//! structurally equal views, and dropping the last group of an entry must
//! evict it — recreation recompiles instead of resurrecting dropped plans.

mod common;

use common::{all_modes, catalog_system, update_price, Log};
use quark_core::relational::Database;
use quark_core::{Mode, Session, StatementResult};

/// `EXPLAIN TRIGGER` text with the group-specific identifiers (group ids in
/// generated trigger names, constants-table suffixes, member/set counters)
/// masked, leaving exactly the translation structure: SQL trigger events,
/// tables, and compiled plans.
fn normalized_explain(session: &mut Session, trigger: &str) -> String {
    let StatementResult::Explain(text) = session
        .execute(&format!("EXPLAIN TRIGGER {trigger}"))
        .unwrap()
    else {
        panic!("expected Explain result")
    };
    let mut out = String::new();
    for line in text.lines() {
        // The header lines carry the trigger's own name and set/member
        // counters; skip them and keep the structural payload.
        if line.starts_with("XML trigger")
            || line.starts_with("group:")
            || line.starts_with("constants:")
        {
            continue;
        }
        out.push_str(&mask_ids(line));
        out.push('\n');
    }
    out
}

/// Replace the digits following `__quark_g` and `__quark_const_` with `N`.
fn mask_ids(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    while let Some(pos) = rest.find("__quark_") {
        let (before, tail) = rest.split_at(pos);
        out.push_str(before);
        let prefix_len = if tail.starts_with("__quark_const_") {
            "__quark_const_".len()
        } else if tail.starts_with("__quark_g") {
            "__quark_g".len()
        } else {
            "__quark_".len()
        };
        out.push_str(&tail[..prefix_len]);
        let after = &tail[prefix_len..];
        let digits = after.chars().take_while(|c| c.is_ascii_digit()).count();
        if digits > 0 {
            out.push('N');
        }
        rest = &after[digits..];
    }
    out.push_str(rest);
    out
}

/// A trigger whose action shape differs from `notify(NEW_NODE)` — it forms
/// a separate group in every mode but shares the (view, event, needs)
/// compile-cache signature.
fn other_shape_trigger(name: &str, watched: &str) -> String {
    format!(
        "create trigger {name} after update on view('catalog')/product \
         where OLD_NODE/@name = '{watched}' do notify(NEW_NODE, 'tagged')"
    )
}

fn base_trigger(name: &str, watched: &str) -> String {
    format!(
        "create trigger {name} after update on view('catalog')/product \
         where OLD_NODE/@name = '{watched}' do notify(NEW_NODE)"
    )
}

/// The cache-hit translation must render exactly like the cold one: the
/// second group's plans are the cached plans of the first, re-dressed with
/// its own constants table.
#[test]
fn cache_hit_translation_renders_identically() {
    for mode in all_modes() {
        let (mut session, _log) = catalog_system(mode);
        session.execute(&base_trigger("Cold", "CRT 15")).unwrap();
        assert_eq!(session.quark().compile_cache_hits(), 0, "{mode:?}");
        session
            .execute(&other_shape_trigger("Warm", "CRT 15"))
            .unwrap();
        assert_eq!(
            session.quark().compile_cache_hits(),
            1,
            "{mode:?}: second group should reuse the compiled plans"
        );
        let cold = normalized_explain(&mut session, "Cold");
        let warm = normalized_explain(&mut session, "Warm");
        assert_eq!(cold, warm, "{mode:?}: cached translation diverged");
    }
}

/// Differential check: a caching system and a cache-disabled system run the
/// same statement sequence and must agree on every observable — firings,
/// SQL-trigger counts, constants rows, and `EXPLAIN TRIGGER` output.
#[test]
fn memoized_compile_is_observationally_identical_to_uncached() {
    for mode in all_modes() {
        let (mut cached, cached_log) = catalog_system(mode);
        let (mut uncached, uncached_log) = catalog_system(mode);
        uncached.quark_mut().set_compile_cache_enabled(false);

        let triggers = [
            base_trigger("T0", "CRT 15"),
            other_shape_trigger("T1", "CRT 15"),
            base_trigger("T2", "LCD 19"),
            other_shape_trigger("T3", "LCD 19"),
        ];
        for t in &triggers {
            cached.execute(t).unwrap();
            uncached.execute(t).unwrap();
        }
        assert!(
            cached.quark().compile_cache_hits() > 0,
            "{mode:?}: differential run never exercised the cache"
        );
        assert_eq!(uncached.quark().compile_cache_hits(), 0, "{mode:?}");
        assert_eq!(
            cached.quark().sql_trigger_count(),
            uncached.quark().sql_trigger_count(),
            "{mode:?}"
        );
        assert_eq!(
            cached.quark().constants_row_count(),
            uncached.quark().constants_row_count(),
            "{mode:?}"
        );

        // A deterministic pseudo-random statement mix (keyed updates,
        // inserts, deletes) — both systems must fire identically after
        // every statement.
        let vendors = [
            ("Amazon", "P1"),
            ("Bestbuy", "P1"),
            ("Circuitcity", "P1"),
            ("Amazon", "P3"),
            ("Buy.com", "P2"),
            ("PriceGrabber", "P2"),
        ];
        let mut state = 0x5eed_cafe_u64;
        for step in 0..40 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pick = (state >> 33) as usize;
            let stmt = match pick % 5 {
                0..=2 => {
                    let (vid, pid) = vendors[pick % vendors.len()];
                    let price = 40.0 + (pick % 200) as f64;
                    format!(
                        "UPDATE vendor SET price = {price:?} \
                         WHERE vid = '{vid}' AND pid = '{pid}'"
                    )
                }
                3 => format!(
                    "INSERT INTO vendor VALUES ('Newegg{step}', 'P1', {:?})",
                    90.0 + (pick % 50) as f64
                ),
                _ => format!("DELETE FROM vendor WHERE vid = 'Newegg{}'", step.max(1) - 1),
            };
            let a = cached.execute(&stmt).unwrap();
            let b = uncached.execute(&stmt).unwrap();
            assert_eq!(a, b, "{mode:?} step {step}: {stmt}");
            assert_eq!(
                cached_log.take(),
                uncached_log.take(),
                "{mode:?} step {step}: firings diverged after {stmt}"
            );
        }

        for name in ["T0", "T1", "T2", "T3"] {
            assert_eq!(
                normalized_explain(&mut cached, name),
                normalized_explain(&mut uncached, name),
                "{mode:?}: EXPLAIN TRIGGER {name} diverged"
            );
        }
    }
}

/// Lifecycle: the compile cache holds one reference per live group, drops
/// the entry with its last group, and recreation after a full drop
/// recompiles (a cache *miss*) instead of resurrecting dropped plans.
#[test]
fn drop_recreate_evicts_compile_cache() {
    for mode in [Mode::Grouped, Mode::GroupedAgg] {
        let (mut session, log) = catalog_system(mode);
        session.execute(&base_trigger("A", "CRT 15")).unwrap();
        session.execute(&base_trigger("B", "LCD 19")).unwrap(); // same group
        session
            .execute(&other_shape_trigger("C", "CRT 15"))
            .unwrap(); // 2nd group
        assert_eq!(session.quark().compile_cache_len(), 1, "{mode:?}");
        assert_eq!(session.quark().compile_cache_hits(), 1, "{mode:?}");

        // Dropping one group keeps the entry alive for the other.
        session.execute("DROP TRIGGER C").unwrap();
        assert_eq!(session.quark().compile_cache_len(), 1, "{mode:?}");

        // Dropping one member of the surviving group keeps it too.
        session.execute("DROP TRIGGER A").unwrap();
        assert_eq!(session.quark().compile_cache_len(), 1, "{mode:?}");

        // The last member's drop evicts the entry.
        session.execute("DROP TRIGGER B").unwrap();
        assert_eq!(session.quark().group_count(), 0, "{mode:?}");
        assert_eq!(
            session.quark().compile_cache_len(),
            0,
            "{mode:?}: entry must die with its last group"
        );

        // Recreation recompiles: hit counter stays put, and the fresh
        // trigger observably works.
        let hits_before = session.quark().compile_cache_hits();
        session.execute(&base_trigger("A2", "CRT 15")).unwrap();
        assert_eq!(
            session.quark().compile_cache_hits(),
            hits_before,
            "{mode:?}: recreation must not be served from a dropped entry"
        );
        assert_eq!(session.quark().compile_cache_len(), 1, "{mode:?}");
        update_price(&mut session, "Amazon", "P1", 55.0).unwrap();
        assert_eq!(log.take().len(), 1, "{mode:?}: recreated trigger fires");
    }
}

/// Disabling the cache must release every group's entry reference: a group
/// created before the disable would otherwise decrement — and wrongly
/// evict — an entry recreated after re-enabling.
#[test]
fn disabling_cache_releases_group_references() {
    let (session, _log) = catalog_system(Mode::Grouped);
    session.execute(&base_trigger("A", "CRT 15")).unwrap();
    session.quark_mut().set_compile_cache_enabled(false);
    assert_eq!(session.quark().compile_cache_len(), 0);
    session.quark_mut().set_compile_cache_enabled(true);
    session
        .execute(&other_shape_trigger("B", "CRT 15"))
        .unwrap();
    assert_eq!(session.quark().compile_cache_len(), 1);

    // A holds no reference on B's entry; dropping it must not evict.
    session.execute("DROP TRIGGER A").unwrap();
    assert_eq!(session.quark().compile_cache_len(), 1);
    session.execute("DROP TRIGGER B").unwrap();
    assert_eq!(session.quark().compile_cache_len(), 0);
}

/// Ungrouped mode gives every trigger its own group; the compile cache is
/// what keeps the N-th identical trigger from re-deriving the delta graphs.
#[test]
fn ungrouped_triggers_share_compiled_plans() {
    let (mut session, log) = catalog_system(Mode::Ungrouped);
    for i in 0..5 {
        session
            .execute(&base_trigger(&format!("U{i}"), "CRT 15"))
            .unwrap();
    }
    assert_eq!(session.quark().group_count(), 5);
    assert_eq!(session.quark().compile_cache_len(), 1);
    assert_eq!(session.quark().compile_cache_hits(), 4);
    update_price(&mut session, "Amazon", "P1", 66.0).unwrap();
    assert_eq!(log.take().len(), 5, "all five copies fire");
}

/// Two views registered under different names but with identical structure
/// share one compile-cache entry (the signature is canonical, not
/// name-based).
#[test]
fn structurally_equal_views_share_cache_entries() {
    let session = quark_xquery::session(Database::new(), Mode::GroupedAgg);
    for stmt in [
        "CREATE TABLE customer (cid INT PRIMARY KEY, name TEXT)",
        "CREATE TABLE orders (oid INT PRIMARY KEY, cid INT, total DOUBLE)",
        "CREATE INDEX ON orders (cid)",
        "INSERT INTO customer VALUES (1, 'ada'), (2, 'bob')",
        "INSERT INTO orders VALUES (10, 1, 120.0), (11, 1, 80.0), \
                                   (12, 2, 300.0), (13, 2, 20.0)",
    ] {
        session.execute(stmt).unwrap();
    }
    let body = r#"{
      <accounts>{
        for $c in view("default")/customer/row
        let $orders := view("default")/orders/row[./cid = $c/cid]
        where count($orders) >= 2
        return <customer name={$c/name}>
          { for $o in $orders return <order><oid>{$o/oid}</oid><total>{$o/total}</total></order> }
        </customer>
      }</accounts>
    }"#;
    session
        .execute(&format!("create view accounts as {body}"))
        .unwrap();
    session
        .execute(&format!("create view mirror as {body}"))
        .unwrap();
    let log = Log::default();
    let sink = log.clone();
    session
        .register_action("notify", move |_db: &Database, call| {
            sink.0
                .lock()
                .unwrap()
                .push((call.trigger.clone(), call.params.clone()));
            Ok(())
        })
        .unwrap();

    session
        .execute(
            "create trigger OnAccounts after update on view('accounts')/customer \
             where OLD_NODE/@name = 'ada' do notify(NEW_NODE)",
        )
        .unwrap();
    assert_eq!(session.quark().compile_cache_hits(), 0);
    session
        .execute(
            "create trigger OnMirror after update on view('mirror')/customer \
             where OLD_NODE/@name = 'ada' do notify(NEW_NODE)",
        )
        .unwrap();
    assert_eq!(
        session.quark().compile_cache_hits(),
        1,
        "structurally equal view must hit the cache"
    );
    assert_eq!(session.quark().compile_cache_len(), 1);

    // Both views' triggers fire on the same base change.
    session
        .execute("UPDATE orders SET total = 140.0 WHERE oid = 10")
        .unwrap();
    let mut fired: Vec<String> = log.take().into_iter().map(|(name, _)| name).collect();
    fired.sort();
    assert_eq!(
        fired,
        vec!["OnAccounts".to_string(), "OnMirror".to_string()]
    );
}
